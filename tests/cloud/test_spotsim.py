"""Seeded spot-price traces: determinism, clamps, hazards, streaming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.catalog import admit_gpu, clear_admitted
from repro.cloud.pricing import SPOT_RATIO_BY_GPU
from repro.cloud.spotsim import (
    SpotMarket,
    SpotMarketConfig,
    SpotPriceTrace,
    generate_trace,
    observe,
)
from repro.errors import CatalogError
from repro.hardware.gpus import GpuSpec


def _config(**overrides):
    defaults = dict(
        seed=7,
        base_ratios=(("K80", 0.29), ("T4", 0.34), ("V100", 0.31)),
    )
    defaults.update(overrides)
    return SpotMarketConfig(**defaults)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        a = generate_trace(_config())
        b = generate_trace(_config())
        assert a.ratios.tobytes() == b.ratios.tobytes()
        assert a.hazards_per_hr.tobytes() == b.hazards_per_hr.tobytes()

    def test_different_seed_differs(self):
        a = generate_trace(_config(seed=7))
        b = generate_trace(_config(seed=8))
        assert a.ratios.tobytes() != b.ratios.tobytes()

    def test_independent_of_global_rng_state(self):
        """The trace derives from the explicit seed, never np.random."""
        np.random.seed(123)  # staticcheck: ignore[determinism] — the test pollutes global state on purpose
        a = generate_trace(_config())
        np.random.seed(99)  # staticcheck: ignore[determinism] — see above
        np.random.random(1000)
        b = generate_trace(_config())
        assert a.ratios.tobytes() == b.ratios.tobytes()


class TestTraceShape:
    def test_ratios_stay_clamped(self):
        # High volatility + frequent spikes stress both clamp edges.
        trace = generate_trace(_config(
            n_ticks=256, volatility=0.5, spike_probability=0.3,
        ))
        assert float(trace.ratios.min()) >= trace.config.min_ratio
        assert float(trace.ratios.max()) <= trace.config.max_ratio

    def test_hazard_bounds_and_monotonicity(self):
        trace = generate_trace(_config(n_ticks=128))
        hazards = trace.hazards_per_hr
        assert float(hazards.min()) >= 0.0
        assert float(hazards.max()) <= trace.config.max_hazard_per_hr
        # Hazard is linear in the ratio: a pricier tick is riskier.
        flat_r = trace.ratios.ravel()
        flat_h = hazards.ravel()
        order = np.argsort(flat_r)
        assert np.all(np.diff(flat_h[order]) >= 0)

    def test_rows_match_gpu_keys(self):
        trace = generate_trace(_config())
        row = trace.ratios_at(0)
        assert set(row) == {"K80", "T4", "V100"}
        assert trace.ratios_at(0) == trace.ratios_at(0)

    def test_tick_out_of_range_raises(self):
        trace = generate_trace(_config(n_ticks=4))
        with pytest.raises(CatalogError, match="outside trace"):
            trace.ratios_at(4)
        with pytest.raises(CatalogError, match="outside trace"):
            trace.hazards_at(-1)

    def test_pricing_at_prices_by_tick_ratio(self):
        from repro.cloud.pricing import ON_DEMAND

        trace = generate_trace(_config())
        pricing = trace.pricing_at(2)
        base = ON_DEMAND.instance("V100", 1)
        spot = pricing.instance("V100", 1)
        assert spot.usd_per_hr == base.usd_per_hr * trace.ratios_at(2)["V100"]
        assert spot.name.startswith("spot:")


class TestConfigValidation:
    def test_empty_base_ratios_rejected(self):
        with pytest.raises(CatalogError, match="at least one GPU"):
            SpotMarketConfig(seed=1, base_ratios=())

    def test_duplicate_gpu_keys_rejected(self):
        with pytest.raises(CatalogError, match="duplicate"):
            SpotMarketConfig(
                seed=1, base_ratios=(("T4", 0.3), ("T4", 0.4))
            )

    def test_bad_tick_count_rejected(self):
        with pytest.raises(CatalogError, match="n_ticks"):
            _config(n_ticks=0)

    def test_bad_clamp_range_rejected(self):
        with pytest.raises(CatalogError, match="min_ratio"):
            _config(min_ratio=0.9, max_ratio=0.5)

    def test_anchor_outside_clamp_rejected(self):
        with pytest.raises(CatalogError, match="outside the"):
            SpotMarketConfig(
                seed=1, base_ratios=(("T4", 0.99),), max_ratio=0.95
            )

    def test_probability_fields_bounded(self):
        with pytest.raises(CatalogError, match="reversion"):
            _config(reversion=1.5)
        with pytest.raises(CatalogError, match="volatility"):
            _config(volatility=-0.1)


class TestForCatalog:
    def test_covers_builtin_anchors(self):
        config = SpotMarketConfig.for_catalog(seed=3)
        assert dict(config.base_ratios) == dict(SPOT_RATIO_BY_GPU)

    def test_admitted_gpu_with_ratio_joins(self):
        spec = GpuSpec(
            key="SIMX", family="GS", marketing_name="Spotsim Test GPU",
            cuda_cores=2048, tensor_cores=0, memory_gb=8,
            peak_gflops=7000.0, memory_bandwidth_gbps=350.0,
            launch_overhead_us=4.0, saturation_elements=5.0e5,
            comm_base_us=6000.0, comm_us_per_mparam=500.0,
        )
        admit_gpu(spec, usd_per_hr=1.0, spot_ratio=0.4, replace=True)
        try:
            config = SpotMarketConfig.for_catalog(seed=3)
            assert dict(config.base_ratios)["SIMX"] == 0.4
        finally:
            clear_admitted("SIMX")
        # Without a declared ratio the GPU has no anchor to fluctuate.
        admit_gpu(spec, usd_per_hr=1.0, replace=True)
        try:
            config = SpotMarketConfig.for_catalog(seed=3)
            assert "SIMX" not in dict(config.base_ratios)
        finally:
            clear_admitted("SIMX")


class TestSpotMarket:
    def test_generation_starts_at_zero_and_ticks(self):
        market = SpotMarket(seed=5)
        assert market.generation == 0
        assert market.tick() == 1
        assert market.tick() == 2
        assert market.generation == 2

    def test_tick_index_wraps_around_the_trace(self):
        market = SpotMarket(config=_config(n_ticks=3))
        ratios0 = market.ratios()
        for _ in range(3):
            market.tick()
        assert market.tick_index == 0
        assert market.ratios() == ratios0

    def test_ratios_track_active_tick(self):
        market = SpotMarket(seed=5)
        before = market.ratios()
        market.tick()
        assert market.ratios() == market.trace.ratios_at(1)
        assert market.ratios() != before

    def test_observe_reads_absolute_generation(self):
        market = SpotMarket(config=_config(n_ticks=4))
        ratios, hazards = observe(market, 6)
        assert ratios == market.trace.ratios_at(2)
        assert hazards == market.trace.hazards_at(2)
        # A bare trace observes the same way.
        ratios2, _ = observe(market.trace, 6)
        assert ratios2 == ratios

    def test_pricing_excludes_static_admission_ratios(self):
        """A trace pricing is the market snapshot, not the admission table."""
        spec = GpuSpec(
            key="SIMY", family="GS", marketing_name="Spotsim Test GPU 2",
            cuda_cores=2048, tensor_cores=0, memory_gb=8,
            peak_gflops=7000.0, memory_bandwidth_gbps=350.0,
            launch_overhead_us=4.0, saturation_elements=5.0e5,
            comm_base_us=6000.0, comm_us_per_mparam=500.0,
        )
        admit_gpu(spec, usd_per_hr=1.0, spot_ratio=0.4, replace=True)
        try:
            market = SpotMarket(config=_config())
            with pytest.raises(CatalogError, match="no spot ratio"):
                market.pricing().instance("SIMY", 1)
        finally:
            clear_admitted("SIMY")
