"""Shared pytest fixtures.

Expensive artifacts (profiles of all training CNNs, a fitted Ceer
estimator) are built once per session at a reduced iteration count —
heavy-op noise is small enough that 80 iterations give stable statistics.
"""

from __future__ import annotations

import os

import pytest

from repro.artifacts.workspace import WORKSPACE_ENV, set_active_workspace
from repro.core.fit import fit_ceer
from repro.graph import GraphBuilder
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TRAIN_MODELS
from repro.profiling.profiler import Profiler

#: Iteration count used by session-level fixtures (paper: 1,000).
TEST_ITERATIONS = 80


@pytest.fixture(scope="session", autouse=True)
def isolated_workspace(tmp_path_factory):
    """Point the artifact workspace at a per-session temp directory.

    Keeps the suite hermetic: tests never read or pollute the developer's
    ``~/.cache/repro/workspace``, and repeated runs start cold.
    """
    directory = tmp_path_factory.mktemp("workspace")
    previous_env = os.environ.get(WORKSPACE_ENV)
    os.environ[WORKSPACE_ENV] = str(directory)
    previous_active = set_active_workspace(None)
    yield directory
    set_active_workspace(previous_active)
    if previous_env is None:
        os.environ.pop(WORKSPACE_ENV, None)
    else:
        os.environ[WORKSPACE_ENV] = previous_env


def build_tiny_graph(batch_size: int = 4, num_classes: int = 10):
    """A small but representative training graph: conv/BN/pool/residual/
    dropout/dense, with input pipeline, backward pass, and optimizer."""
    b = GraphBuilder(
        "tiny", batch_size=batch_size, image_hw=(32, 32), num_classes=num_classes
    )
    x = b.input()
    x = b.conv(x, filters=16, kernel=3, batch_norm=True, scope="c1")
    x = b.max_pool(x, kernel=2, stride=2, scope="p1")
    shortcut = x
    x = b.conv(x, filters=16, kernel=3, batch_norm=True, activation=None, scope="c2")
    x = b.add(shortcut, x, activation="relu", scope="res")
    x = b.avg_pool(x, kernel=2, stride=2, scope="p2")
    x = b.flatten(x)
    x = b.dropout(x, 0.5)
    logits = b.dense(x, num_classes, activation=None, scope="head")
    return b.finalize(logits)


@pytest.fixture(scope="session")
def tiny_graph():
    return build_tiny_graph()


@pytest.fixture(scope="session")
def train_profiles_small():
    """Profiles of all 8 training CNNs on all 4 GPUs (reduced iterations)."""
    profiler = Profiler(n_iterations=TEST_ITERATIONS)
    return profiler.profile_many(list(TRAIN_MODELS), list(GPU_KEYS))


@pytest.fixture(scope="session")
def fitted_small(train_profiles_small):
    """A fitted Ceer estimator bundled with diagnostics (session-scoped)."""
    return fit_ceer(
        n_iterations=TEST_ITERATIONS, train_profiles=train_profiles_small
    )


@pytest.fixture(scope="session")
def ceer_small(fitted_small):
    return fitted_small.estimator
