"""Tests for baseline predictors and naive strategies."""

import pytest

from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND
from repro.errors import ModelingError
from repro.core.baselines import (
    LayerLevelEstimator,
    PaleoStyleEstimator,
    cheapest_instance_strategy,
    latest_gpu_strategy,
    strategy_cost_comparison,
)
from repro.sim.trainer import measure_training
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


@pytest.fixture(scope="module")
def paleo():
    return PaleoStyleEstimator.fit(
        ["inception_v1", "vgg_11", "resnet_50", "inception_v4"],
        ["V100", "T4"], n_iterations=60,
    )


@pytest.fixture(scope="module")
def layer_level(train_profiles_small):
    return LayerLevelEstimator.fit(train_profiles_small)


class TestPaleo:
    def test_predicts_rough_magnitude(self, paleo):
        observed = measure_training(
            "resnet_101", "V100", 1, JOB, n_profile_iterations=60,
        ).compute_us_per_iteration
        predicted = paleo.predict_iteration_us("resnet_101", "V100")
        assert 0.4 * observed < predicted < 2.5 * observed

    def test_unfitted_gpu_rejected(self, paleo):
        with pytest.raises(ModelingError):
            paleo.predict_iteration_us("alexnet", "M60")

    def test_less_accurate_than_ceer(self, paleo, ceer_small):
        observed = measure_training(
            "alexnet", "V100", 1, JOB, n_profile_iterations=60,
            seed_context="holdout",
        ).per_iteration_us
        ceer_err = abs(
            ceer_small.predict_iteration_us("alexnet", "V100", 1) - observed
        )
        paleo_err = abs(paleo.predict_iteration_us("alexnet", "V100") - observed)
        assert ceer_err < paleo_err


class TestLayerLevel:
    def test_only_layer_kernels_fitted(self, layer_level):
        from repro.core.baselines import LAYER_LEVEL_OP_TYPES

        assert {op for _, op in layer_level.models} <= LAYER_LEVEL_OP_TYPES

    def test_underpredicts_whole_model(self, layer_level):
        """Ignoring small ops, CPU ops, and communication makes this
        baseline biased low — the error source the paper calls out."""
        observed = measure_training(
            "inception_v3", "T4", 1, JOB, n_profile_iterations=60,
            seed_context="holdout",
        ).per_iteration_us
        predicted = layer_level.predict_iteration_us("inception_v3", "T4")
        assert predicted < observed

    def test_unfitted_gpu_raises(self, train_profiles_small):
        partial = LayerLevelEstimator.fit(train_profiles_small.for_gpu("V100"))
        with pytest.raises(ModelingError):
            partial.predict_iteration_us("alexnet", "K80")


class TestStrategies:
    def test_cheapest_instance_is_g3(self):
        assert cheapest_instance_strategy().name == "g3s.xlarge"

    def test_cheapest_under_market_prices_is_p2(self):
        inst = cheapest_instance_strategy(pricing=MARKET_RATIO)
        assert inst.gpu_key == "K80"

    def test_latest_gpu_is_p3(self):
        assert latest_gpu_strategy().gpu_key == "V100"

    def test_latest_gpu_with_budget_picks_largest_affordable(self):
        inst = latest_gpu_strategy(budget_usd_per_hr=13.0)
        assert inst.num_gpus == 4  # p3.8xlarge at $12.24
        inst_small = latest_gpu_strategy(budget_usd_per_hr=3.10)
        assert inst_small.num_gpus == 1

    def test_latest_gpu_budget_unsatisfiable(self):
        with pytest.raises(ModelingError):
            latest_gpu_strategy(budget_usd_per_hr=1.0)

    def test_strategy_cost_comparison(self, ceer_small):
        base = ceer_small.predict_training("inception_v1", "T4", 1, JOB)
        alt = ceer_small.predict_training("inception_v1", "V100", 4, JOB)
        ratios = dict(strategy_cost_comparison(base, [alt]))
        assert ratios[alt.instance_name] == pytest.approx(
            alt.cost_dollars / base.cost_dollars
        )
