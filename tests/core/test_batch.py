"""Tests for the batched catalog sweep (repro.core.batch).

The load-bearing contract is numerical equivalence: the tensor path must
reproduce the per-candidate reference loop to rel diff < 1e-9 (in
practice it matches to ulp level, because it replays the scalar
arithmetic operation-for-operation). Everything else — masking,
candidate ordering, the frontier, the plan's validation — is checked
against the same reference.
"""

import numpy as np
import pytest

from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND, SPOT
from repro.core.batch import (
    DEFAULT_SWEEP_BATCH_SIZES,
    DEFAULT_SWEEP_PRICINGS,
    StackedOpModels,
    SweepPlan,
    evaluate_sweep,
    sweep_candidates_reference,
)
from repro.core.estimator import CeerEstimator
from repro.core.pareto import pareto_frontier
from repro.errors import CatalogError, ModelingError, UnseenOperationError
from repro.graph.graph import OpGraph
from repro.models.zoo import model_names
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)

#: The acceptance bound; the implementation actually matches to ~1e-15.
EQUIVALENCE_BOUND = 1e-9

#: A small but fully-representative plan: both axes extend past the
#: paper's grid (k=6 forces a proxy of the 8-GPU hosts and masks M60),
#: two batch sizes, and all three pricing tiers.
SMALL_PLAN_KWARGS = dict(
    gpu_counts=(1, 2, 6), batch_sizes=(16, 32),
    pricings=(ON_DEMAND, SPOT, MARKET_RATIO),
)


def _assert_equivalent(result, reference):
    """Batched result vs reference-loop predictions: same candidates,
    same numbers (rel diff < 1e-9 on time and cost)."""
    cells = list(result.iter_candidates())
    assert len(cells) == len(reference) == result.n_candidates
    for cell, ref in zip(cells, reference):
        got = result.prediction(*cell)
        assert got.instance_name == ref.instance_name
        assert got.gpu_key == ref.gpu_key
        assert got.num_gpus == ref.num_gpus
        assert got.batch_size == ref.batch_size
        assert got.total_us == pytest.approx(ref.total_us, rel=EQUIVALENCE_BOUND)
        assert got.cost_dollars == pytest.approx(
            ref.cost_dollars, rel=EQUIVALENCE_BOUND
        )


class TestEquivalence:
    def test_zoo_wide_small_plan(self, ceer_small):
        plan = SweepPlan(**SMALL_PLAN_KWARGS)
        for name in model_names():
            result = evaluate_sweep(ceer_small, name, JOB, plan)
            reference = sweep_candidates_reference(ceer_small, name, JOB, plan)
            _assert_equivalent(result, reference)

    def test_full_catalog_inception(self, ceer_small):
        plan = SweepPlan.full_catalog()
        result = evaluate_sweep(ceer_small, "inception_v3", JOB, plan)
        reference = sweep_candidates_reference(
            ceer_small, "inception_v3", JOB, plan
        )
        _assert_equivalent(result, reference)

    def test_scalar_estimator_path(self, ceer_small):
        """use_engine=False compiles directly; numbers are unchanged."""
        scalar = CeerEstimator(
            ceer_small.compute_models, ceer_small.comm_model, use_engine=False
        )
        plan = SweepPlan(batch_sizes=(32,))
        result = evaluate_sweep(scalar, "alexnet", JOB, plan)
        reference = sweep_candidates_reference(scalar, "alexnet", JOB, plan)
        _assert_equivalent(result, reference)
        assert scalar._engine is None  # the sweep never built an engine

    @pytest.mark.parametrize(
        "flags",
        [{"heavy_only": True}, {"include_communication": False}],
        ids=["heavy_only", "no_comm"],
    )
    def test_ablation_flags(self, ceer_small, flags):
        ablated = CeerEstimator(
            ceer_small.compute_models, ceer_small.comm_model, **flags
        )
        plan = SweepPlan(**SMALL_PLAN_KWARGS)
        result = evaluate_sweep(ablated, "resnet_101", JOB, plan)
        reference = sweep_candidates_reference(ablated, "resnet_101", JOB, plan)
        _assert_equivalent(result, reference)

    def test_repeated_sweep_served_from_caches_identically(self, ceer_small):
        plan = SweepPlan(**SMALL_PLAN_KWARGS)
        first = evaluate_sweep(ceer_small, "vgg_19", JOB, plan)
        second = evaluate_sweep(ceer_small, "vgg_19", JOB, plan)
        np.testing.assert_array_equal(first.total_us, second.total_us)
        np.testing.assert_array_equal(first.cost_usd, second.cost_usd)

    def test_prebuilt_graph(self, ceer_small, tiny_graph):
        plan = SweepPlan(batch_sizes=(tiny_graph.batch_size,))
        job = TrainingJob(IMAGENET_6400, batch_size=tiny_graph.batch_size)
        result = evaluate_sweep(ceer_small, tiny_graph, job, plan)
        reference = sweep_candidates_reference(ceer_small, tiny_graph, job, plan)
        _assert_equivalent(result, reference)


class TestMasking:
    def test_unpriceable_cells_masked_not_failed(self, ceer_small):
        """k=16 exists only for K80; other GPUs mask, none raise."""
        plan = SweepPlan(gpu_counts=(1, 16), batch_sizes=(32,))
        result = evaluate_sweep(ceer_small, "alexnet", JOB, plan)
        k16 = plan.gpu_counts.index(16)
        for g, gpu_key in enumerate(plan.gpu_keys):
            assert result.valid(0, g, 0)  # k=1 always priceable
            assert result.valid(0, g, k16) == (gpu_key == "K80")
        g_v100 = plan.gpu_keys.index("V100")
        assert np.isnan(result.usd_per_hr[0, g_v100, k16])
        assert np.isnan(result.cost_usd[0, g_v100, k16, 0])
        with pytest.raises(CatalogError):
            result.prediction(0, g_v100, k16, 0)

    def test_masked_cells_match_reference_skips(self, ceer_small):
        plan = SweepPlan(gpu_counts=(1, 16), batch_sizes=(32,))
        result = evaluate_sweep(ceer_small, "alexnet", JOB, plan)
        reference = sweep_candidates_reference(ceer_small, "alexnet", JOB, plan)
        _assert_equivalent(result, reference)

    def test_time_tensor_is_never_masked(self, ceer_small):
        """Eq. (2) time is pricing-free, so it fills even masked cells."""
        plan = SweepPlan(gpu_counts=(1, 16), batch_sizes=(32,))
        result = evaluate_sweep(ceer_small, "alexnet", JOB, plan)
        assert np.isfinite(result.total_us).all()


class TestStacking:
    def test_totals_match_scalar_per_gpu(self, ceer_small, tiny_graph):
        """The stacked (G,) vector equals G independent scalar evals."""
        from repro.core.engine import compile_graph

        models = ceer_small.compute_models
        stacked = StackedOpModels(models)
        compiled = compile_graph(tiny_graph, models)
        gpu_keys = ("V100", "K80", "T4", "M60")
        totals = stacked.totals_us(compiled, gpu_keys)
        for g, gpu_key in enumerate(gpu_keys):
            assert totals[g] == pytest.approx(
                models.predict_graph_us(tiny_graph, gpu_key),
                rel=EQUIVALENCE_BOUND,
            )

    def test_unknown_op_type_raises_unseen(self, ceer_small):
        stacked = StackedOpModels(ceer_small.compute_models)
        with pytest.raises(UnseenOperationError):
            stacked.for_type(("V100",), "NoSuchOp", 3)

    def test_stacked_arrays_cached(self, ceer_small):
        stacked = StackedOpModels(ceer_small.compute_models)
        gpu_keys = ("V100", "K80")
        # Derive a real (op type, feature count) from the fitted models.
        (_, op_type), op_model = next(
            iter(ceer_small.compute_models.heavy_models.items())
        )
        regression = op_model.regression
        n = len(regression.coef) // 2 if regression.degree == 2 else len(regression.coef)
        first = stacked.for_type(gpu_keys, op_type, n)
        assert stacked.for_type(gpu_keys, op_type, n) is first


class TestSweepPlan:
    def test_empty_axis_rejected(self):
        for kwargs in (
            {"gpu_keys": ()}, {"gpu_counts": ()},
            {"batch_sizes": ()}, {"pricings": ()},
        ):
            with pytest.raises(ModelingError):
                SweepPlan(**kwargs)

    def test_non_positive_values_rejected(self):
        with pytest.raises(ModelingError):
            SweepPlan(gpu_counts=(1, 0))
        with pytest.raises(ModelingError):
            SweepPlan(batch_sizes=(32, -1))

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ModelingError):
            SweepPlan(gpu_counts=(1, 2, 2))
        with pytest.raises(ModelingError):
            SweepPlan(batch_sizes=(32, 32))

    def test_full_catalog_spans_grown_menu(self):
        plan = SweepPlan.full_catalog()
        assert plan.gpu_counts == tuple(range(1, 17))  # K80 goes to 16
        assert plan.batch_sizes == DEFAULT_SWEEP_BATCH_SIZES
        assert len(plan.pricings) == len(DEFAULT_SWEEP_PRICINGS)

    def test_full_catalog_prices_1000_plus_candidates(self, ceer_small):
        result = evaluate_sweep(
            ceer_small, "alexnet", JOB, SweepPlan.full_catalog()
        )
        assert result.n_candidates >= 1000
        # 36 priceable (GPU, k) combos x 12 batches x 3 tiers.
        assert result.n_candidates == 36 * 12 * 3
        assert result.n_candidates < result.plan.n_cells  # masking happened

    def test_graph_with_mismatched_batch_rejected(self, ceer_small, tiny_graph):
        plan = SweepPlan(batch_sizes=(64,))
        assert tiny_graph.batch_size != 64
        with pytest.raises(ModelingError):
            evaluate_sweep(ceer_small, tiny_graph, JOB, plan)


class TestFrontier:
    def test_matches_list_pareto_over_reference(self, ceer_small):
        plan = SweepPlan(**SMALL_PLAN_KWARGS)
        result = evaluate_sweep(ceer_small, "inception_v3", JOB, plan)
        reference = sweep_candidates_reference(
            ceer_small, "inception_v3", JOB, plan
        )
        via_tensor = result.frontier()
        via_list = pareto_frontier(reference)
        assert [
            (p.instance_name, p.batch_size) for p in via_tensor
        ] == [(p.instance_name, p.batch_size) for p in via_list]
        for a, b in zip(via_tensor, via_list):
            assert a.total_us == pytest.approx(b.total_us, rel=EQUIVALENCE_BOUND)
            assert a.cost_dollars == pytest.approx(
                b.cost_dollars, rel=EQUIVALENCE_BOUND
            )

    def test_frontier_is_nondominated_and_sorted(self, ceer_small):
        result = evaluate_sweep(
            ceer_small, "alexnet", JOB, SweepPlan.full_catalog()
        )
        frontier = result.frontier()
        times = [p.total_us for p in frontier]
        costs = [p.cost_dollars for p in frontier]
        assert times == sorted(times)
        assert costs == sorted(costs, reverse=True)


class TestClipBoundaryEquivalence:
    """The stacked tensor path must honor clip_max and the prediction
    floor *exactly* at the boundary — including the zero-padded path
    where degree-1 and degree-2 models share one coefficient matrix."""

    @staticmethod
    def _hand_built_models():
        from repro.core.classify import OpClassification
        from repro.core.op_models import ComputeTimeModels, HeavyOpModel
        from repro.core.regression import RegressionModel

        # V100: a genuine degree-2 model (coefficients fill both halves).
        quadratic = RegressionModel(
            degree=2, intercept=0.0, coef=(1.0, 0.0, 1.0, 0.0),
            r2=1.0, adjusted_r2=1.0, n_train=10,
            feature_names=("f0", "f1"), clip_max=6.0,
        )
        # K80: a degree-1 model, stacked via the zero-padded squared half.
        linear = RegressionModel(
            degree=1, intercept=0.25, coef=(2.0, 0.0),
            r2=1.0, adjusted_r2=1.0, n_train=10,
            feature_names=("f0", "f1"), clip_max=21.0,
        )
        classification = OpClassification(
            heavy=frozenset({"Conv2D"}), light=frozenset(), cpu=frozenset()
        )
        return ComputeTimeModels(
            classification=classification,
            heavy_models={
                ("V100", "Conv2D"): HeavyOpModel("V100", "Conv2D", quadratic),
                ("K80", "Conv2D"): HeavyOpModel("K80", "Conv2D", linear),
            },
            light_median_us=0.0,
            cpu_median_us=0.0,
        )

    @staticmethod
    def _compiled(x):
        from repro.core.engine import CompiledGraph

        return CompiledGraph(
            graph_name="clip-boundary", batch_size=32,
            num_ops=x.shape[0], num_parameters=1_000_000,
            heavy_features={"Conv2D": x}, n_light=0, n_cpu=0,
            n_unseen=0, unseen_types=(),
        )

    def test_batched_clip_and_floor_exact_at_boundary(self):
        from repro.core.batch import evaluate_compiled_batch_us
        from repro.core.regression import PREDICTION_FLOOR_US

        models = self._hand_built_models()
        # Rows chosen so raw predictions land exactly ON each boundary,
        # strictly above the clip, and strictly below the floor:
        #   V100 (x + x^2 on f0): [2, 0] -> 6.0 == clip, [3, 0] -> 12 > clip,
        #     [0.1, 0] -> 0.11 < floor
        #   K80 (0.25 + 2 f0):  [2, 0] -> 4.25, [3, 0] -> 6.25,
        #     [0.1, 0] -> 0.45 < floor; plus [10.375, 5] -> 21.0 == clip
        #     and [0.375, 5] -> 1.0 == floor on a dedicated row.
        x = np.asarray([
            [2.0, 0.0],
            [3.0, 0.0],
            [0.1, 0.0],
            [10.375, 5.0],
            [0.375, 5.0],
        ])
        compiled = self._compiled(x)
        gpu_keys = ("V100", "K80")
        totals = evaluate_compiled_batch_us(
            compiled, StackedOpModels(models), gpu_keys
        )

        for g, gpu_key in enumerate(gpu_keys):
            regression = models.heavy_models[(gpu_key, "Conv2D")].regression
            per_row = regression.predict_batch(x)
            # Bitwise equality, not approx: the tensor path replays the
            # scalar clip-then-floor sequence exactly.
            assert totals[g] == per_row.sum()

        # The scalar reference itself pins the boundary semantics.
        v100 = models.heavy_models[("V100", "Conv2D")].regression
        k80 = models.heavy_models[("K80", "Conv2D")].regression
        assert v100.predict_one([2.0, 0.0]) == 6.0  # raw == clip_max
        assert v100.predict_one([3.0, 0.0]) == 6.0  # clipped down
        assert v100.predict_one([0.1, 0.0]) == PREDICTION_FLOOR_US
        assert k80.predict_one([10.375, 5.0]) == 21.0  # raw == clip_max
        assert k80.predict_one([0.375, 5.0]) == PREDICTION_FLOOR_US  # raw == floor
        assert k80.predict_one([0.1, 0.0]) == PREDICTION_FLOOR_US

    def test_padded_degree1_matches_unpadded_evaluation(self):
        from repro.core.batch import evaluate_compiled_batch_us

        models = self._hand_built_models()
        rng = np.random.default_rng(7)
        x = rng.uniform(0.0, 12.0, size=(64, 2))
        compiled = self._compiled(x)
        totals = evaluate_compiled_batch_us(
            compiled, StackedOpModels(models), ("K80",)
        )
        linear = models.heavy_models[("K80", "Conv2D")].regression
        assert totals[0] == linear.predict_batch(x).sum()


class TestSpotAdmittedRegression:
    """Spot/admitted sweeps mask unquoted GPUs instead of raising.

    Regression guard for the pricing path: a spec-only GPU admitted
    *without* ``--spot-ratio`` has no spot (or market) quote, and a full
    catalog sweep that includes it must NaN-mask those cells while still
    pricing it On-Demand — under every pricing tier at once.
    """

    SPEC_KWARGS = dict(
        key="ADMX", family="GA", marketing_name="Batch Test GPU",
        cuda_cores=4608, tensor_cores=576, memory_gb=24.0,
        peak_gflops=16300.0, memory_bandwidth_gbps=672.0,
        launch_overhead_us=3.4, saturation_elements=2.0e7,
        comm_base_us=190.0, comm_us_per_mparam=4.1,
    )

    @pytest.fixture(scope="class")
    def transfer_estimator(self, train_profiles_small):
        from repro.core.fit import fit_ceer

        return fit_ceer(
            n_iterations=80, gpu_counts=(1, 2),
            train_profiles=train_profiles_small, backend="transfer",
        ).estimator

    @pytest.fixture
    def admitted_gpu(self):
        from repro.cloud.catalog import admit_gpu, clear_admitted
        from repro.hardware.gpus import GpuSpec

        admit_gpu(GpuSpec(**self.SPEC_KWARGS), usd_per_hr=2.0, replace=True)
        yield "ADMX"
        clear_admitted("ADMX")

    def test_full_catalog_all_tiers_masks_admitted(
        self, transfer_estimator, admitted_gpu
    ):
        from repro.hardware.gpus import GPU_KEYS

        plan = SweepPlan.full_catalog(
            batch_sizes=(16, 32),
            pricings=(ON_DEMAND, SPOT, MARKET_RATIO),
            gpu_keys=tuple(GPU_KEYS) + (admitted_gpu,),
        )
        result = evaluate_sweep(transfer_estimator, "alexnet", JOB, plan)
        g = plan.gpu_keys.index(admitted_gpu)
        # On-Demand prices the admitted GPU; spot and market have no
        # quote for it, so its cells mask rather than raise.
        assert np.isfinite(result.cost_usd[0, g]).any()
        assert not np.isfinite(result.cost_usd[1, g]).any()
        assert not np.isfinite(result.cost_usd[2, g]).any()
        # The time tensors are pricing-independent and never masked.
        assert np.isfinite(result.total_us[g]).all()
        # Built-in GPUs still price under every tier.
        v = plan.gpu_keys.index("V100")
        for p in range(3):
            assert np.isfinite(result.cost_usd[p, v]).any()

    def test_admitted_with_ratio_prices_on_spot(
        self, transfer_estimator, admitted_gpu
    ):
        from repro.cloud.catalog import admit_gpu
        from repro.hardware.gpus import GPU_KEYS, GpuSpec

        admit_gpu(
            GpuSpec(**self.SPEC_KWARGS), usd_per_hr=2.0, replace=True,
            spot_ratio=0.4,
        )
        plan = SweepPlan.full_catalog(
            batch_sizes=(32,), pricings=(ON_DEMAND, SPOT),
            gpu_keys=tuple(GPU_KEYS) + (admitted_gpu,),
        )
        result = evaluate_sweep(transfer_estimator, "alexnet", JOB, plan)
        g = plan.gpu_keys.index(admitted_gpu)
        od = result.usd_per_hr[0, g]
        spot = result.usd_per_hr[1, g]
        priced = np.isfinite(od)
        assert priced.any()
        assert np.array_equal(spot[priced], od[priced] * 0.4)

    def test_recommender_sweep_spot_masks_not_raises(
        self, transfer_estimator, admitted_gpu
    ):
        from repro.core.recommend import Recommender
        from repro.hardware.gpus import GPU_KEYS

        recommender = Recommender(
            transfer_estimator, pricing=SPOT,
            gpu_keys=tuple(GPU_KEYS) + (admitted_gpu,),
        )
        predictions = recommender.sweep("alexnet", JOB)
        assert predictions  # built-in GPUs still priced
        assert all(p.gpu_key != admitted_gpu for p in predictions)
        on_demand = Recommender(
            transfer_estimator, pricing=ON_DEMAND,
            gpu_keys=tuple(GPU_KEYS) + (admitted_gpu,),
        ).sweep("alexnet", JOB)
        assert any(p.gpu_key == admitted_gpu for p in on_demand)
