"""Tests for heavy/light/CPU op classification."""

import pytest

from repro.errors import ModelingError
from repro.core.classify import (
    CPU,
    HEAVY,
    LIGHT,
    OpClassification,
    classify_operations,
)
from repro.profiling.records import ProfileDataset, ProfileRecord


def _record(op_type, gpu="K80", mean=100.0, device="GPU", model="m"):
    return ProfileRecord(
        model=model, gpu_key=gpu, op_name=f"x/{op_type}", op_type=op_type,
        device=device, features=(1.0, 1.0), input_bytes=100, n_samples=10,
        mean_us=mean, std_us=1.0, median_us=mean,
    )


class TestClassification:
    def test_threshold_partition(self):
        ds = ProfileDataset([
            _record("Conv2D", mean=5000.0),
            _record("Relu", mean=400.0),
            _record("Reshape", mean=20.0),
            _record("SparseToDense", mean=900.0, device="CPU"),
        ])
        c = classify_operations(ds, threshold_us=350.0)
        assert c.kind("Conv2D") == HEAVY
        assert c.kind("Relu") == HEAVY  # 400 >= 350
        assert c.kind("Reshape") == LIGHT
        assert c.kind("SparseToDense") == CPU

    def test_cpu_regardless_of_time(self):
        ds = ProfileDataset([
            _record("IteratorGetNext", mean=100000.0, device="CPU"),
            _record("Conv2D", mean=5000.0),
        ])
        c = classify_operations(ds)
        assert c.kind("IteratorGetNext") == CPU

    def test_reference_gpu_means_used(self):
        """Classification uses the K80 (P2) reference, not other GPUs."""
        ds = ProfileDataset([
            _record("Relu", gpu="K80", mean=100.0),
            _record("Relu", gpu="V100", mean=9000.0),
            _record("Conv2D", gpu="K80", mean=5000.0),
        ])
        c = classify_operations(ds, threshold_us=350.0)
        assert c.kind("Relu") == LIGHT

    def test_fallback_when_missing_on_reference(self):
        ds = ProfileDataset([
            _record("Relu", gpu="V100", mean=9000.0),
            _record("Conv2D", gpu="K80", mean=5000.0),
        ])
        c = classify_operations(ds)
        assert c.kind("Relu") == HEAVY  # conservative: slowest observed GPU

    def test_unseen_type_raises(self):
        ds = ProfileDataset([_record("Conv2D", mean=5000.0)])
        c = classify_operations(ds)
        with pytest.raises(ModelingError):
            c.kind("AvgPool")
        assert not c.knows("AvgPool")

    def test_empty_profiles_rejected(self):
        with pytest.raises(ModelingError):
            classify_operations(ProfileDataset([]))


class TestOnRealProfiles:
    def test_paper_heavy_set(self, train_profiles_small):
        """The ~20 heavy op types include the kernels the paper names."""
        c = classify_operations(train_profiles_small)
        assert 18 <= len(c.heavy) <= 23
        for expected in (
            "Conv2D", "Conv2DBackpropFilter", "Conv2DBackpropInput",
            "MaxPool", "MaxPoolGrad", "AvgPool", "AvgPoolGrad",
            "FusedBatchNormGradV3", "Relu", "ReluGrad", "BiasAdd",
            "AddV2", "AddN", "MatMul", "ConcatV2",
        ):
            assert expected in c.heavy, expected

    def test_cpu_set_is_host_ops(self, train_profiles_small):
        c = classify_operations(train_profiles_small)
        assert "SparseToDense" in c.cpu
        assert "IteratorGetNext" in c.cpu
        assert not c.cpu & c.heavy

    def test_partitions_disjoint_and_complete(self, train_profiles_small):
        c = classify_operations(train_profiles_small)
        assert not c.heavy & c.light
        assert not c.heavy & c.cpu
        for op_type in train_profiles_small.op_types():
            assert c.knows(op_type)

    def test_light_ops_small_time_share(self, train_profiles_small):
        """Paper: light ops contribute < ~7% of training time."""
        c = classify_operations(train_profiles_small)
        gpu = train_profiles_small.gpu_records()
        light_time = sum(r.mean_us for r in gpu if r.op_type in c.light)
        total_time = sum(r.mean_us for r in gpu)
        assert light_time / total_time < 0.07
