"""Tests for the communication-overhead model S_GPU(params; k)."""

import pytest

from repro.errors import ModelingError
from repro.core.comm_model import (
    CommObservation,
    CommunicationModel,
    collect_comm_observations,
    fit_comm_model,
)
from repro.core.regression import fit_regression

import numpy as np


def _observations(gpu="V100", k=2, slope=10.0, intercept=500.0):
    return [
        CommObservation(
            model=f"m{i}", gpu_key=gpu, num_gpus=k,
            num_parameters=p, overhead_us=intercept + slope * p / 1e6,
        )
        for i, p in enumerate([5e6, 20e6, 50e6, 80e6, 120e6])
    ]


class TestFit:
    def test_recovers_linear_law(self):
        model = fit_comm_model(_observations())
        assert model.r2[("V100", 2)] == pytest.approx(1.0)
        assert model.predict_us("V100", 2, 40_000_000) == pytest.approx(900.0)

    def test_separate_models_per_gpu_and_k(self):
        obs = _observations("V100", 2) + _observations("K80", 2, slope=100.0)
        model = fit_comm_model(obs)
        assert set(model.models) == {("V100", 2), ("K80", 2)}
        assert model.predict_us("K80", 2, 40e6) > model.predict_us("V100", 2, 40e6)

    def test_too_few_cnns_rejected(self):
        with pytest.raises(ModelingError):
            fit_comm_model(_observations()[:2])

    def test_no_observations_rejected(self):
        with pytest.raises(ModelingError):
            fit_comm_model([])

    def test_extrapolation_beyond_fitted_k(self):
        model = fit_comm_model(_observations(k=4))
        extrapolated = model.predict_us("V100", 8, 40e6)
        fitted = model.predict_us("V100", 4, 40e6)
        assert extrapolated > fitted

    def test_unknown_gpu_rejected(self):
        model = fit_comm_model(_observations())
        with pytest.raises(ModelingError):
            model.predict_us("T4", 2, 10e6)


class TestCollection:
    @pytest.fixture(scope="class")
    def observations(self):
        return collect_comm_observations(
            ["inception_v1", "alexnet", "vgg_11"], ["V100", "T4"],
            gpu_counts=(1, 2, 4), n_iterations=60,
        )

    def test_covers_all_triples(self, observations):
        triples = {(o.model, o.gpu_key, o.num_gpus) for o in observations}
        assert len(triples) == 3 * 2 * 3

    def test_overheads_positive_and_growing_in_k(self, observations):
        by_key = {
            (o.model, o.gpu_key, o.num_gpus): o.overhead_us for o in observations
        }
        for model in ("inception_v1", "alexnet", "vgg_11"):
            for gpu in ("V100", "T4"):
                assert 0 < by_key[(model, gpu, 1)]
                assert by_key[(model, gpu, 1)] < by_key[(model, gpu, 2)]
                assert by_key[(model, gpu, 2)] < by_key[(model, gpu, 4)]

    def test_more_parameters_more_overhead(self, observations):
        by_key = {(o.model, o.gpu_key, o.num_gpus): o for o in observations}
        small = by_key[("inception_v1", "V100", 2)]
        big = by_key[("vgg_11", "V100", 2)]
        assert big.num_parameters > small.num_parameters
        assert big.overhead_us > small.overhead_us

    def test_fig7_linearity(self, fitted_small):
        """Fitted comm models reach the paper's R^2 0.88-0.98 band."""
        r2s = fitted_small.diagnostics.comm_r2
        assert r2s
        assert all(r2 > 0.85 for r2 in r2s.values())
