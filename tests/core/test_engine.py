"""Tests for the compiled, vectorized prediction engine.

The load-bearing property: for every zoo model on every GPU key and every
ablation-flag combination, :class:`PredictionEngine` totals must match the
scalar per-op reference loop within 1e-6 relative tolerance.
"""

import pytest

from repro.core.classify import classify_operations
from repro.core.engine import (
    PredictionEngine,
    compile_graph,
    evaluate_compiled_us,
)
from repro.core.op_models import fit_compute_models
from repro.errors import UnseenOperationError
from repro.graph.graph import OpGraph
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import build_model, model_names

#: The acceptance bar: vectorized == scalar within 1e-6 relative.
REL_TOL = 1e-6

#: Flag combinations the equivalence property sweeps.
FLAG_CONFIGS = (
    {},
    {"heavy_only": True},
    {"include_light": False},
    {"include_cpu": False},
)


@pytest.fixture(scope="module")
def compute_models(train_profiles_small):
    classification = classify_operations(train_profiles_small)
    return fit_compute_models(train_profiles_small, classification)


@pytest.fixture(scope="module")
def strict_models(train_profiles_small):
    classification = classify_operations(train_profiles_small)
    return fit_compute_models(
        train_profiles_small, classification, strict_unseen=True
    )


@pytest.fixture(scope="module")
def engine(compute_models):
    return PredictionEngine(compute_models)


def graph_with_unseen_op(batch_size=4):
    """A one-op graph whose GPU op type never appears in training profiles."""
    graph = OpGraph(name="unseen", batch_size=batch_size)
    graph.add(
        Operation(
            name="x/Tanh", op_type="Tanh",
            inputs=(TensorShape.of(4, 4),), outputs=(TensorShape.of(4, 4),),
        )
    )
    return graph


class TestScalarEquivalence:
    @pytest.mark.parametrize("model_name", model_names())
    def test_full_zoo_all_gpus_all_flags(self, model_name, compute_models, engine):
        """The zoo x GPU x flags equivalence property (acceptance criterion)."""
        graph = build_model(model_name, batch_size=32)
        for gpu_key in GPU_KEYS:
            for flags in FLAG_CONFIGS:
                scalar = compute_models.predict_graph_us(graph, gpu_key, **flags)
                vectorized = engine.predict_graph_us(graph, gpu_key, **flags)
                assert vectorized == pytest.approx(scalar, rel=REL_TOL), (
                    model_name, gpu_key, flags,
                )

    def test_matches_per_op_scalar_sum(self, compute_models, engine, tiny_graph):
        manual = sum(
            compute_models.predict_op_us(op, "T4") for op in tiny_graph
        )
        assert engine.predict_graph_us(tiny_graph, "T4") == pytest.approx(
            manual, rel=REL_TOL
        )

    def test_unseen_op_fallback_matches_scalar(self, compute_models, engine):
        """Non-strict: unseen GPU ops cost the light median in both paths."""
        graph = graph_with_unseen_op()
        scalar = compute_models.predict_graph_us(graph, "V100")
        assert engine.predict_graph_us(graph, "V100") == pytest.approx(scalar)
        assert scalar == pytest.approx(compute_models.light_median_us)
        # ... and are dropped (not raised on) under heavy_only.
        assert engine.predict_graph_us(
            graph, "V100", heavy_only=True
        ) == pytest.approx(
            compute_models.predict_graph_us(graph, "V100", heavy_only=True)
        )

    def test_strict_unseen_raises_in_both_paths(self, strict_models):
        """Strict mode raises identically — including under heavy_only,
        where the seed scalar path used to skip the op silently."""
        graph = graph_with_unseen_op()
        strict_engine = PredictionEngine(strict_models)
        for flags in ({}, {"heavy_only": True}, {"include_light": False}):
            with pytest.raises(UnseenOperationError):
                strict_models.predict_graph_us(graph, "V100", **flags)
            with pytest.raises(UnseenOperationError):
                strict_engine.predict_graph_us(graph, "V100", **flags)


class TestCompiledGraph:
    def test_partition_covers_every_op(self, compute_models):
        graph = build_model("inception_v1", batch_size=32)
        compiled = compile_graph(graph, compute_models)
        assert (
            compiled.n_heavy + compiled.n_light + compiled.n_cpu
            + compiled.n_unseen
        ) == len(graph)
        assert compiled.num_ops == len(graph)
        assert compiled.num_parameters == graph.num_parameters
        assert compiled.n_unseen == 0

    def test_feature_matrices_match_schema(self, compute_models):
        from repro.profiling.features import feature_schema

        graph = build_model("alexnet", batch_size=32)
        compiled = compile_graph(graph, compute_models)
        for op_type, x in compiled.heavy_features.items():
            assert x.ndim == 2
            assert x.shape[0] == len(
                [op for op in graph.ops_of_type(op_type)]
            )
            assert x.shape[1] == len(feature_schema(op_type))

    def test_unseen_types_recorded(self, compute_models):
        compiled = compile_graph(graph_with_unseen_op(), compute_models)
        assert compiled.n_unseen == 1
        assert compiled.unseen_types == ("Tanh",)
        assert evaluate_compiled_us(
            compiled, compute_models, "V100"
        ) == pytest.approx(compute_models.light_median_us)


class TestEngineCaching:
    def test_graph_memoized_by_name_and_batch(self, compute_models):
        engine = PredictionEngine(compute_models)
        g1 = engine.resolve_graph("alexnet", 32)
        g2 = engine.resolve_graph("alexnet", 32)
        assert g1 is g2
        assert engine.stats["graph_hits"] == 1
        assert engine.resolve_graph("alexnet", 16) is not g1

    def test_compilation_happens_once_per_graph(self, compute_models):
        engine = PredictionEngine(compute_models)
        graph = build_model("inception_v1", batch_size=32)
        for gpu_key in GPU_KEYS:
            engine.predict_graph_us(graph, gpu_key)
        assert engine.stats["compile_misses"] == 1
        assert engine.stats["compile_hits"] == len(GPU_KEYS) - 1

    def test_totals_cached_per_gpu_and_flags(self, compute_models):
        engine = PredictionEngine(compute_models)
        graph = build_model("alexnet", batch_size=32)
        first = engine.predict_graph_us(graph, "T4")
        again = engine.predict_graph_us(graph, "T4")
        assert first == again
        assert engine.stats["eval_hits"] == 1
        # heavy_only is a distinct cache line, not a stale hit.
        heavy = engine.predict_graph_us(graph, "T4", heavy_only=True)
        assert heavy < first
        assert engine.stats["eval_misses"] == 2

    def test_lru_eviction_bounds_memory(self, compute_models):
        engine = PredictionEngine(
            compute_models, graph_cache_size=2, compiled_cache_size=2
        )
        for name in ("alexnet", "vgg_11", "inception_v1"):
            engine.predict_graph_us(name, "V100")
        info = engine.cache_info()
        assert info["graphs_cached"] == 2
        assert info["compiled_cached"] == 2

    def test_clear_resets(self, compute_models):
        engine = PredictionEngine(compute_models)
        engine.predict_graph_us("alexnet", "V100")
        engine.clear()
        info = engine.cache_info()
        assert info["graphs_cached"] == 0
        assert info["compiled_cached"] == 0
        assert info["eval_misses"] == 0


class TestEstimatorIntegration:
    def test_estimator_engine_matches_scalar_reference(self, fitted_small):
        from repro.core.estimator import CeerEstimator

        est = fitted_small.estimator
        scalar_est = CeerEstimator(
            est.compute_models, est.comm_model, use_engine=False
        )
        for gpu_key in GPU_KEYS:
            assert est.predict_iteration_us(
                "inception_v3", gpu_key, 2
            ) == pytest.approx(
                scalar_est.predict_iteration_us("inception_v3", gpu_key, 2),
                rel=REL_TOL,
            )

    def test_sweep_reuses_one_compilation(self, fitted_small):
        from repro.core.recommend import Recommender
        from repro.workloads.dataset import IMAGENET_6400, TrainingJob

        est = fitted_small.estimator
        est.engine.clear()
        recommender = Recommender(est)
        predictions = recommender.sweep(
            "inception_v3", TrainingJob(IMAGENET_6400, batch_size=32)
        )
        assert len(predictions) == 16
        info = est.engine.cache_info()
        assert info["compile_misses"] == 1
        # The batched sweep compiles once and evaluates every candidate
        # through the stacked coefficient matrices — the engine's
        # per-(graph, GPU) evaluation path is never entered.
        assert info["eval_misses"] == 0
        assert info["eval_hits"] == 0
