"""Tests for the CeerEstimator (Eq. (1)/(2) and cost prediction)."""

import pytest

from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND
from repro.sim.trainer import measure_training
from repro.workloads.dataset import IMAGENET, IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


class TestPrediction:
    def test_eq2_accounting(self, ceer_small):
        p = ceer_small.predict_training("inception_v1", "V100", 2, JOB)
        assert p.per_iteration_us == pytest.approx(
            p.compute_us_per_iteration + p.comm_overhead_us
        )
        assert p.iterations == JOB.iterations(2)
        assert p.total_us == pytest.approx(p.per_iteration_us * p.iterations)
        assert p.cost_dollars == pytest.approx(p.total_hours * p.usd_per_hr)

    def test_accuracy_on_held_out_model(self, ceer_small):
        """The headline claim: <~10% per-iteration error on unseen CNNs
        (the paper reports ~4-5% on average)."""
        for gpu in ("V100", "K80", "T4", "M60"):
            observed = measure_training(
                "resnet_101", gpu, 1, JOB,
                n_profile_iterations=60, seed_context="holdout",
            )
            predicted = ceer_small.predict_training("resnet_101", gpu, 1, JOB)
            error = abs(predicted.per_iteration_us - observed.per_iteration_us)
            assert error / observed.per_iteration_us < 0.10, gpu

    def test_comm_term_included_per_k(self, ceer_small):
        p1 = ceer_small.predict_training("alexnet", "V100", 1, JOB)
        p4 = ceer_small.predict_training("alexnet", "V100", 4, JOB)
        assert p4.comm_overhead_us > p1.comm_overhead_us
        assert p4.compute_us_per_iteration == pytest.approx(
            p1.compute_us_per_iteration
        )

    def test_instance_override(self, ceer_small):
        market = MARKET_RATIO.instance("K80", 1)
        p = ceer_small.predict_training(
            "alexnet", "K80", 1, JOB, instance=market
        )
        assert p.usd_per_hr == pytest.approx(0.15)

    def test_pricing_scheme_argument(self, ceer_small):
        aws = ceer_small.predict_training("alexnet", "K80", 1, JOB)
        market = ceer_small.predict_training(
            "alexnet", "K80", 1, JOB, pricing=MARKET_RATIO
        )
        assert market.total_us == pytest.approx(aws.total_us)
        assert market.cost_dollars < aws.cost_dollars

    def test_predict_iteration_us_matches_training_path(self, ceer_small):
        per_iter = ceer_small.predict_iteration_us("alexnet", "T4", 2)
        p = ceer_small.predict_training("alexnet", "T4", 2, JOB)
        assert per_iter == pytest.approx(p.per_iteration_us)

    def test_epoch_scaling(self, ceer_small):
        one = ceer_small.predict_training("alexnet", "T4", 1, JOB)
        three = ceer_small.predict_training(
            "alexnet", "T4", 1, TrainingJob(IMAGENET_6400, batch_size=32, epochs=3)
        )
        assert three.total_us == pytest.approx(3 * one.total_us)


class TestInstanceValidation:
    def test_mismatched_gpu_raises(self, ceer_small):
        """Regression: an explicit instance on different hardware used to
        silently price compute predicted for another GPU."""
        from repro.errors import ModelingError

        wrong = ON_DEMAND.instance("K80", 1)
        with pytest.raises(ModelingError) as excinfo:
            ceer_small.predict_training(
                "alexnet", "V100", 1, JOB, instance=wrong
            )
        message = str(excinfo.value)
        assert "K80" in message and "V100" in message
        assert wrong.name in message

    def test_mismatched_gpu_count_raises(self, ceer_small):
        from repro.errors import ModelingError

        four_gpu = ON_DEMAND.instance("V100", 4)
        with pytest.raises(ModelingError):
            ceer_small.predict_training(
                "alexnet", "V100", 1, JOB, instance=four_gpu
            )

    def test_matching_instance_is_accepted(self, ceer_small):
        matching = ON_DEMAND.instance("V100", 2)
        explicit = ceer_small.predict_training(
            "alexnet", "V100", 2, JOB, instance=matching
        )
        implicit = ceer_small.predict_training("alexnet", "V100", 2, JOB)
        assert explicit == implicit

    def test_family_alias_resolves_before_validation(self, ceer_small):
        """``gpu_key="P3"`` names the same hardware as a V100 instance."""
        p = ceer_small.predict_training(
            "alexnet", "P3", 1, JOB, instance=ON_DEMAND.instance("V100", 1)
        )
        assert p.gpu_key == "V100"


class TestLazyEngine:
    def _fresh(self, ceer_small, use_engine):
        from repro.core.estimator import CeerEstimator

        return CeerEstimator(
            ceer_small.compute_models, ceer_small.comm_model,
            use_engine=use_engine,
        )

    def test_scalar_estimator_never_builds_an_engine(self, ceer_small):
        """Regression: the estimator used to construct a PredictionEngine
        (compile cache and all) even with ``use_engine=False``."""
        estimator = self._fresh(ceer_small, use_engine=False)
        estimator.predict_training("alexnet", "V100", 1, JOB)
        estimator.resolve_graph("inception_v1")
        assert estimator._engine is None

    def test_scalar_resolve_graph_memoizes(self, ceer_small):
        estimator = self._fresh(ceer_small, use_engine=False)
        first = estimator.resolve_graph("alexnet")
        assert estimator.resolve_graph("alexnet") is first
        # A different batch size is a different graph.
        assert estimator.resolve_graph("alexnet", batch_size=8) is not first

    def test_engine_created_once_on_first_use(self, ceer_small):
        estimator = self._fresh(ceer_small, use_engine=True)
        assert estimator._engine is None
        engine = estimator.engine
        assert estimator.engine is engine
        assert estimator._engine is engine

    def test_scalar_and_engine_paths_agree(self, ceer_small):
        scalar = self._fresh(ceer_small, use_engine=False)
        engined = self._fresh(ceer_small, use_engine=True)
        for model in ("alexnet", "inception_v1"):
            assert engined.predict_iteration_us(
                model, "V100", 2
            ) == pytest.approx(scalar.predict_iteration_us(model, "V100", 2))


class TestVariants:
    def test_no_comm_variant_smaller(self, ceer_small):
        from repro.core.baselines import no_comm_variant

        variant = no_comm_variant(ceer_small)
        full = ceer_small.predict_training("alexnet", "V100", 4, JOB)
        ablated = variant.predict_training("alexnet", "V100", 4, JOB)
        assert ablated.comm_overhead_us == 0.0
        assert ablated.total_us < full.total_us

    def test_heavy_only_variant_smaller(self, ceer_small):
        from repro.core.baselines import heavy_only_variant

        variant = heavy_only_variant(ceer_small)
        full = ceer_small.predict_training("alexnet", "V100", 1, JOB)
        ablated = variant.predict_training("alexnet", "V100", 1, JOB)
        assert ablated.compute_us_per_iteration < full.compute_us_per_iteration

    def test_ignoring_comm_hurts_alexnet_most(self, ceer_small):
        """Section IV-A: AlexNet's single-GPU error is ~30% without the
        communication term — the largest among the test CNNs."""
        from repro.core.baselines import no_comm_variant

        variant = no_comm_variant(ceer_small)
        errors = {}
        for model in ("alexnet", "inception_v3", "vgg_19"):
            observed = measure_training(
                model, "V100", 1, JOB, n_profile_iterations=60,
                seed_context="holdout",
            ).per_iteration_us
            predicted = variant.predict_iteration_us(model, "V100", 1)
            errors[model] = abs(predicted - observed) / observed
        assert errors["alexnet"] == max(errors.values())
        assert errors["alexnet"] > 0.15
