"""Tests for the CeerEstimator (Eq. (1)/(2) and cost prediction)."""

import pytest

from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND
from repro.sim.trainer import measure_training
from repro.workloads.dataset import IMAGENET, IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


class TestPrediction:
    def test_eq2_accounting(self, ceer_small):
        p = ceer_small.predict_training("inception_v1", "V100", 2, JOB)
        assert p.per_iteration_us == pytest.approx(
            p.compute_us_per_iteration + p.comm_overhead_us
        )
        assert p.iterations == JOB.iterations(2)
        assert p.total_us == pytest.approx(p.per_iteration_us * p.iterations)
        assert p.cost_dollars == pytest.approx(p.total_hours * p.usd_per_hr)

    def test_accuracy_on_held_out_model(self, ceer_small):
        """The headline claim: <~10% per-iteration error on unseen CNNs
        (the paper reports ~4-5% on average)."""
        for gpu in ("V100", "K80", "T4", "M60"):
            observed = measure_training(
                "resnet_101", gpu, 1, JOB,
                n_profile_iterations=60, seed_context="holdout",
            )
            predicted = ceer_small.predict_training("resnet_101", gpu, 1, JOB)
            error = abs(predicted.per_iteration_us - observed.per_iteration_us)
            assert error / observed.per_iteration_us < 0.10, gpu

    def test_comm_term_included_per_k(self, ceer_small):
        p1 = ceer_small.predict_training("alexnet", "V100", 1, JOB)
        p4 = ceer_small.predict_training("alexnet", "V100", 4, JOB)
        assert p4.comm_overhead_us > p1.comm_overhead_us
        assert p4.compute_us_per_iteration == pytest.approx(
            p1.compute_us_per_iteration
        )

    def test_instance_override(self, ceer_small):
        market = MARKET_RATIO.instance("K80", 1)
        p = ceer_small.predict_training(
            "alexnet", "K80", 1, JOB, instance=market
        )
        assert p.usd_per_hr == pytest.approx(0.15)

    def test_pricing_scheme_argument(self, ceer_small):
        aws = ceer_small.predict_training("alexnet", "K80", 1, JOB)
        market = ceer_small.predict_training(
            "alexnet", "K80", 1, JOB, pricing=MARKET_RATIO
        )
        assert market.total_us == pytest.approx(aws.total_us)
        assert market.cost_dollars < aws.cost_dollars

    def test_predict_iteration_us_matches_training_path(self, ceer_small):
        per_iter = ceer_small.predict_iteration_us("alexnet", "T4", 2)
        p = ceer_small.predict_training("alexnet", "T4", 2, JOB)
        assert per_iter == pytest.approx(p.per_iteration_us)

    def test_epoch_scaling(self, ceer_small):
        one = ceer_small.predict_training("alexnet", "T4", 1, JOB)
        three = ceer_small.predict_training(
            "alexnet", "T4", 1, TrainingJob(IMAGENET_6400, batch_size=32, epochs=3)
        )
        assert three.total_us == pytest.approx(3 * one.total_us)


class TestVariants:
    def test_no_comm_variant_smaller(self, ceer_small):
        from repro.core.baselines import no_comm_variant

        variant = no_comm_variant(ceer_small)
        full = ceer_small.predict_training("alexnet", "V100", 4, JOB)
        ablated = variant.predict_training("alexnet", "V100", 4, JOB)
        assert ablated.comm_overhead_us == 0.0
        assert ablated.total_us < full.total_us

    def test_heavy_only_variant_smaller(self, ceer_small):
        from repro.core.baselines import heavy_only_variant

        variant = heavy_only_variant(ceer_small)
        full = ceer_small.predict_training("alexnet", "V100", 1, JOB)
        ablated = variant.predict_training("alexnet", "V100", 1, JOB)
        assert ablated.compute_us_per_iteration < full.compute_us_per_iteration

    def test_ignoring_comm_hurts_alexnet_most(self, ceer_small):
        """Section IV-A: AlexNet's single-GPU error is ~30% without the
        communication term — the largest among the test CNNs."""
        from repro.core.baselines import no_comm_variant

        variant = no_comm_variant(ceer_small)
        errors = {}
        for model in ("alexnet", "inception_v3", "vgg_19"):
            observed = measure_training(
                model, "V100", 1, JOB, n_profile_iterations=60,
                seed_context="holdout",
            ).per_iteration_us
            predicted = variant.predict_iteration_us(model, "V100", 1)
            errors[model] = abs(predicted - observed) / observed
        assert errors["alexnet"] == max(errors.values())
        assert errors["alexnet"] > 0.15
