"""Tests for the end-to-end fit pipeline and its diagnostics."""

import pytest

from repro.core.fit import fit_ceer


class TestFitCeer:
    def test_returns_usable_estimator(self, fitted_small):
        assert fitted_small.estimator is not None
        assert fitted_small.train_profiles
        # The estimator predicts without raising for every GPU.
        for gpu in ("V100", "K80", "T4", "M60"):
            assert fitted_small.estimator.predict_iteration_us(
                "inception_v3", gpu, 1
            ) > 0

    def test_diagnostics_complete(self, fitted_small):
        d = fitted_small.diagnostics
        assert len(d.train_models) == 8
        assert d.n_profile_records == len(fitted_small.train_profiles)
        assert d.heavy_op_types and d.light_op_types and d.cpu_op_types
        assert d.light_median_us > 0 and d.cpu_median_us > 0
        assert d.heavy_r2 and d.comm_r2

    def test_summary_renders(self, fitted_small):
        text = fitted_small.diagnostics.summary()
        assert "heavy" in text and "R^2" in text

    def test_reuses_provided_profiles(self, train_profiles_small):
        fitted = fit_ceer(train_profiles=train_profiles_small, gpu_counts=(1, 2))
        assert fitted.train_profiles is train_profiles_small
        assert set(k for _, k in fitted.diagnostics.comm_r2) == {1, 2}

    def test_small_custom_fit(self):
        """Fitting on a subset of models/GPUs works end to end."""
        fitted = fit_ceer(
            train_models=("inception_v1", "vgg_11", "resnet_50", "inception_v4"),
            gpu_keys=("V100", "T4"),
            n_iterations=40,
            gpu_counts=(1, 2),
        )
        prediction = fitted.estimator.predict_iteration_us("alexnet", "T4", 2)
        assert prediction > 0
