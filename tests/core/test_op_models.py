"""Tests for the fitted per-op compute-time models."""

import pytest

from repro.errors import ModelingError, UnseenOperationError
from repro.core.classify import classify_operations
from repro.core.op_models import fit_compute_models
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.models import build_model
from repro.profiling.records import ProfileDataset


@pytest.fixture(scope="module")
def compute_models(train_profiles_small):
    classification = classify_operations(train_profiles_small)
    return fit_compute_models(train_profiles_small, classification)


class TestFit:
    def test_models_for_every_heavy_type_on_every_gpu(self, compute_models):
        for gpu in ("V100", "K80", "T4", "M60"):
            for op_type in compute_models.classification.heavy:
                assert (gpu, op_type) in compute_models.heavy_models, (gpu, op_type)

    def test_paper_r2_band(self, compute_models):
        """Section IV-B: training R^2 from 0.84 to 0.98 (ours skews a bit
        higher; assert the same qualitative band)."""
        r2s = list(compute_models.train_r2.values())
        assert min(r2s) > 0.80
        assert sum(r2s) / len(r2s) > 0.95

    def test_medians_positive_and_ordered(self, compute_models):
        assert 0 < compute_models.light_median_us < 500
        assert compute_models.cpu_median_us > compute_models.light_median_us

    def test_empty_profiles_rejected(self, train_profiles_small):
        classification = classify_operations(train_profiles_small)
        with pytest.raises(ModelingError):
            fit_compute_models(ProfileDataset([]), classification)


class TestPredictOp:
    def test_heavy_prediction_near_truth(self, compute_models):
        """Predictions for a held-out model's convolutions track the
        simulated ground truth within the paper's 2-10% band."""
        from repro.hardware.kernel_model import base_time_us

        graph = build_model("resnet_101", batch_size=32)
        convs = graph.ops_of_type("Conv2D")[:20]
        errors = []
        for op in convs:
            predicted = compute_models.predict_op_us(op, "T4")
            truth = base_time_us(op, "T4")
            errors.append(abs(predicted - truth) / truth)
        assert sum(errors) / len(errors) < 0.12

    def test_light_uses_global_median(self, compute_models):
        op = Operation(
            name="x/Reshape", op_type="Reshape",
            inputs=(TensorShape.of(4, 4),), outputs=(TensorShape.of(16),),
        )
        assert compute_models.predict_op_us(op, "V100") == compute_models.light_median_us
        # GPU-oblivious (paper, Section IV-B)
        assert compute_models.predict_op_us(op, "K80") == compute_models.light_median_us

    def test_cpu_uses_cpu_median(self, compute_models):
        op = Operation(
            name="x/SparseToDense", op_type="SparseToDense",
            inputs=(TensorShape.of(4, dtype="int64"),),
            outputs=(TensorShape.of(4, dtype="int64"),),
        )
        assert compute_models.predict_op_us(op, "V100") == compute_models.cpu_median_us

    def test_unseen_type_falls_back_to_light_median(self, compute_models):
        op = Operation(
            name="x/Tanh", op_type="Tanh",
            inputs=(TensorShape.of(4, 4),), outputs=(TensorShape.of(4, 4),),
        )
        assert compute_models.predict_op_us(op, "V100") == compute_models.light_median_us

    def test_strict_mode_raises_on_unseen(self, train_profiles_small):
        classification = classify_operations(train_profiles_small)
        models = fit_compute_models(
            train_profiles_small, classification, strict_unseen=True
        )
        op = Operation(
            name="x/Tanh", op_type="Tanh",
            inputs=(TensorShape.of(4, 4),), outputs=(TensorShape.of(4, 4),),
        )
        with pytest.raises(UnseenOperationError):
            models.predict_op_us(op, "V100")


class TestPredictGraph:
    def test_sum_over_ops(self, compute_models, tiny_graph):
        total = compute_models.predict_graph_us(tiny_graph, "V100")
        manual = sum(
            compute_models.predict_op_us(op, "V100") for op in tiny_graph
        )
        assert total == pytest.approx(manual)

    def test_heavy_only_drops_light_and_cpu(self, compute_models, tiny_graph):
        full = compute_models.predict_graph_us(tiny_graph, "V100")
        heavy = compute_models.predict_graph_us(tiny_graph, "V100", heavy_only=True)
        assert heavy < full

    def test_include_flags(self, compute_models, tiny_graph):
        no_cpu = compute_models.predict_graph_us(tiny_graph, "V100", include_cpu=False)
        no_light = compute_models.predict_graph_us(tiny_graph, "V100", include_light=False)
        full = compute_models.predict_graph_us(tiny_graph, "V100")
        assert no_cpu < full and no_light <= full

    def _unseen_graph(self):
        from repro.graph.graph import OpGraph

        graph = OpGraph(name="unseen", batch_size=4)
        graph.add(
            Operation(
                name="x/Tanh", op_type="Tanh",
                inputs=(TensorShape.of(4, 4),), outputs=(TensorShape.of(4, 4),),
            )
        )
        return graph

    def test_unseen_op_costs_light_median_when_lenient(self, compute_models):
        graph = self._unseen_graph()
        total = compute_models.predict_graph_us(graph, "V100")
        assert total == pytest.approx(compute_models.light_median_us)
        # ... and contributes nothing once light ops are excluded.
        assert compute_models.predict_graph_us(graph, "V100", heavy_only=True) == 0.0

    def test_strict_unseen_raises_even_under_heavy_only(self, train_profiles_small):
        """The unseen-op policy is flag-independent: strict mode must not
        silently skip an unseen GPU op just because heavy_only discards
        its light-median contribution (seed behaviour, now fixed)."""
        classification = classify_operations(train_profiles_small)
        strict = fit_compute_models(
            train_profiles_small, classification, strict_unseen=True
        )
        graph = self._unseen_graph()
        with pytest.raises(UnseenOperationError):
            strict.predict_graph_us(graph, "V100")
        with pytest.raises(UnseenOperationError):
            strict.predict_graph_us(graph, "V100", heavy_only=True)
        with pytest.raises(UnseenOperationError):
            strict.predict_graph_us(graph, "V100", include_light=False)


class TestProportionalFallbackSurfacing:
    """A fit must say — not silently decide — which cells got the
    proportional fallback (LRN-style op types with too few rows)."""

    @pytest.fixture(scope="class")
    def sparse_profiles(self):
        from repro.profiling.profiler import Profiler

        # inception_v1 carries exactly two LRN (and two LRNGrad) ops, so
        # profiling it alone leaves those cells short of the rows a full
        # OLS fit needs (len(schema) + 2) on every GPU.
        return Profiler(n_iterations=20).profile_many(
            ["inception_v1"], ["V100", "T4"]
        )

    def test_fallback_cells_listed_in_fit(self, sparse_profiles):
        classification = classify_operations(sparse_profiles)
        models = fit_compute_models(sparse_profiles, classification)
        assert models.proportional_fallbacks == (
            ("T4", "LRN"), ("T4", "LRNGrad"),
            ("V100", "LRN"), ("V100", "LRNGrad"),
        )

    def test_fallback_counter_increments(self, sparse_profiles):
        from repro.obs.metrics import default_registry

        classification = classify_operations(sparse_profiles)
        counter = default_registry().counter("fit.proportional_fallbacks")
        before = counter.value
        models = fit_compute_models(sparse_profiles, classification)
        assert counter.value - before == len(models.proportional_fallbacks) == 4

    def test_fallback_cells_reach_diagnostics(self):
        from repro.core.fit import fit_ceer
        from repro.profiling.profiler import Profiler

        # Three CNNs (the comm model's minimum), only one of which has
        # LRN ops — the LRN cells still lack rows for a full OLS fit.
        models = ("vgg_11", "inception_v1", "resnet_50")
        profiles = Profiler(n_iterations=20).profile_many(
            list(models), ["V100", "T4"]
        )
        fitted = fit_ceer(
            train_models=models, gpu_keys=("V100", "T4"),
            n_iterations=20, gpu_counts=(1,),
            train_profiles=profiles,
        )
        diagnostics = fitted.diagnostics
        assert diagnostics.proportional_fallbacks == (
            ("T4", "LRN"), ("T4", "LRNGrad"),
            ("V100", "LRN"), ("V100", "LRNGrad"),
        )
        assert "proportional fallback" in diagnostics.summary()

    def test_full_training_set_has_no_lrn_fallback_shortage(
        self, train_profiles_small, compute_models
    ):
        """With all 8 training CNNs the LRN cells still fall back — the
        training set simply has too few LRN instances; the point of the
        surfacing is that this is now visible."""
        assert all(
            op_type in ("LRN", "LRNGrad")
            for _, op_type in compute_models.proportional_fallbacks
        )
