"""Tests for the time-cost Pareto analysis."""

import pytest

from repro.errors import RecommendationError
from repro.core.estimator import TrainingPrediction
from repro.core.pareto import analyze_tradeoff, pareto_frontier
from repro.core.recommend import MinimizeCost, MinimizeTime, Recommender
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


def _prediction(name, time_us, cost):
    """A synthetic prediction with the given total time and cost."""
    iterations = 100.0
    per_iter = time_us / iterations
    hourly = cost / (time_us / 3.6e9)
    return TrainingPrediction(
        model="m", gpu_key="V100", num_gpus=1, instance_name=name,
        usd_per_hr=hourly, compute_us_per_iteration=per_iter,
        comm_overhead_us=0.0, iterations=iterations,
    )


class TestFrontier:
    def test_dominated_points_removed(self):
        preds = [
            _prediction("fast-expensive", 100.0, 10.0),
            _prediction("slow-cheap", 1000.0, 1.0),
            _prediction("dominated", 1000.0, 12.0),  # slower AND pricier
        ]
        frontier = pareto_frontier(preds)
        names = [p.instance_name for p in frontier]
        assert names == ["fast-expensive", "slow-cheap"]

    def test_single_point(self):
        preds = [_prediction("only", 10.0, 1.0)]
        assert pareto_frontier(preds) == preds

    def test_empty_rejected(self):
        with pytest.raises(RecommendationError):
            pareto_frontier([])

    def test_frontier_sorted_fastest_first(self):
        preds = [
            _prediction("a", 300.0, 3.0),
            _prediction("b", 100.0, 9.0),
            _prediction("c", 200.0, 6.0),
        ]
        frontier = pareto_frontier(preds)
        times = [p.total_us for p in frontier]
        costs = [p.cost_dollars for p in frontier]
        assert times == sorted(times)
        assert costs == sorted(costs, reverse=True)


class TestAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, ceer_small):
        return analyze_tradeoff(Recommender(ceer_small), "inception_v3", JOB)

    def test_endpoints_match_recommender(self, analysis, ceer_small):
        recommender = Recommender(ceer_small)
        fastest = recommender.recommend("inception_v3", JOB, MinimizeTime()).best
        cheapest = recommender.recommend("inception_v3", JOB, MinimizeCost()).best
        assert analysis.fastest.instance_name == fastest.instance_name
        assert analysis.cheapest.instance_name == cheapest.instance_name

    def test_frontier_subset_of_sweep(self, analysis):
        sweep_names = {p.instance_name for p in analysis.predictions}
        assert {p.instance_name for p in analysis.frontier} <= sweep_names
        assert 1 <= len(analysis.frontier) <= len(analysis.predictions)

    def test_no_frontier_point_dominated(self, analysis):
        for point in analysis.frontier:
            for other in analysis.predictions:
                dominated = (
                    other.total_us <= point.total_us
                    and other.cost_dollars < point.cost_dollars
                ) or (
                    other.total_us < point.total_us
                    and other.cost_dollars <= point.cost_dollars
                )
                assert not dominated, (point.instance_name, other.instance_name)

    def test_knee_on_frontier(self, analysis):
        assert analysis.is_efficient(analysis.knee().instance_name)

    def test_best_under_budget(self, analysis):
        cheapest = analysis.cheapest
        pick = analysis.best_under_budget(cheapest.cost_dollars * 1.5)
        assert pick.cost_dollars <= cheapest.cost_dollars * 1.5
        with pytest.raises(RecommendationError):
            analysis.best_under_budget(cheapest.cost_dollars * 0.5)

    def test_budget_pick_matches_fig10_logic(self, analysis):
        """The frontier query and the TotalBudget objective agree."""
        from repro.core.recommend import TotalBudget

        budget = analysis.cheapest.cost_dollars * 2.0
        via_frontier = analysis.best_under_budget(budget)
        # No faster feasible point exists anywhere in the full sweep.
        feasible = [p for p in analysis.predictions if p.cost_dollars <= budget]
        assert via_frontier.total_us == min(p.total_us for p in feasible)

    def test_render(self, analysis):
        text = analysis.render()
        assert "efficient" in text and "knee" in text
