"""Tests for the time-cost Pareto analysis."""

import numpy as np
import pytest

from repro.errors import RecommendationError
from repro.core.estimator import TrainingPrediction
from repro.core.pareto import analyze_tradeoff, pareto_frontier, pareto_order_and_keep
from repro.core.recommend import MinimizeCost, MinimizeTime, Recommender
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


def _prediction(name, time_us, cost):
    """A synthetic prediction with the given total time and cost."""
    iterations = 100.0
    per_iter = time_us / iterations
    hourly = cost / (time_us / 3.6e9)
    return TrainingPrediction(
        model="m", gpu_key="V100", num_gpus=1, instance_name=name,
        usd_per_hr=hourly, compute_us_per_iteration=per_iter,
        comm_overhead_us=0.0, iterations=iterations,
    )


class TestFrontier:
    def test_dominated_points_removed(self):
        preds = [
            _prediction("fast-expensive", 100.0, 10.0),
            _prediction("slow-cheap", 1000.0, 1.0),
            _prediction("dominated", 1000.0, 12.0),  # slower AND pricier
        ]
        frontier = pareto_frontier(preds)
        names = [p.instance_name for p in frontier]
        assert names == ["fast-expensive", "slow-cheap"]

    def test_single_point(self):
        preds = [_prediction("only", 10.0, 1.0)]
        assert pareto_frontier(preds) == preds

    def test_empty_rejected(self):
        with pytest.raises(RecommendationError):
            pareto_frontier([])

    def test_frontier_sorted_fastest_first(self):
        preds = [
            _prediction("a", 300.0, 3.0),
            _prediction("b", 100.0, 9.0),
            _prediction("c", 200.0, 6.0),
        ]
        frontier = pareto_frontier(preds)
        times = [p.total_us for p in frontier]
        costs = [p.cost_dollars for p in frontier]
        assert times == sorted(times)
        assert costs == sorted(costs, reverse=True)

    def test_exact_duplicate_keeps_first_occurrence(self):
        """Two identical (time, cost) points: the earlier one survives."""
        preds = [
            _prediction("first", 100.0, 5.0),
            _prediction("twin", 100.0, 5.0),
        ]
        frontier = pareto_frontier(preds)
        assert [p.instance_name for p in frontier] == ["first"]

    def test_time_tie_keeps_cheaper(self):
        preds = [
            _prediction("pricey", 100.0, 9.0),
            _prediction("cheap", 100.0, 5.0),
        ]
        frontier = pareto_frontier(preds)
        assert [p.instance_name for p in frontier] == ["cheap"]

    def test_cost_tie_keeps_faster(self):
        preds = [
            _prediction("slow", 200.0, 5.0),
            _prediction("fast", 100.0, 5.0),
        ]
        frontier = pareto_frontier(preds)
        assert [p.instance_name for p in frontier] == ["fast"]

    def test_all_dominated_by_one(self):
        preds = [
            _prediction("king", 10.0, 1.0),
            _prediction("d1", 20.0, 2.0),
            _prediction("d2", 30.0, 1.5),
            _prediction("d3", 10.0, 1.1),
            _prediction("d4", 11.0, 1.05),
        ]
        frontier = pareto_frontier(preds)
        assert [p.instance_name for p in frontier] == ["king"]

    def test_no_dominated_points_all_survive(self):
        preds = [_prediction(f"p{i}", 100.0 * (i + 1), 10.0 - i) for i in range(5)]
        assert len(pareto_frontier(preds)) == 5


class TestOrderAndKeep:
    """The vectorized dominance kernel shared by list and tensor paths."""

    def test_matches_list_frontier(self):
        rng = np.random.default_rng(7)
        t = rng.uniform(1.0, 100.0, size=50)
        c = rng.uniform(1.0, 100.0, size=50)
        preds = [_prediction(f"p{i}", t[i], c[i]) for i in range(50)]
        order, keep = pareto_order_and_keep(
            np.array([p.total_us for p in preds]),
            np.array([p.cost_dollars for p in preds]),
        )
        via_kernel = [preds[i].instance_name for i in order[keep]]
        via_list = [p.instance_name for p in pareto_frontier(preds)]
        assert via_kernel == via_list

    def test_duplicate_block_keeps_first_index(self):
        t = np.array([5.0, 5.0, 5.0, 1.0])
        c = np.array([2.0, 2.0, 2.0, 9.0])
        order, keep = pareto_order_and_keep(t, c)
        assert list(order[keep]) == [3, 0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(RecommendationError):
            pareto_order_and_keep(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(RecommendationError):
            pareto_order_and_keep(np.array([]), np.array([]))


class TestAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, ceer_small):
        return analyze_tradeoff(Recommender(ceer_small), "inception_v3", JOB)

    def test_endpoints_match_recommender(self, analysis, ceer_small):
        recommender = Recommender(ceer_small)
        fastest = recommender.recommend("inception_v3", JOB, MinimizeTime()).best
        cheapest = recommender.recommend("inception_v3", JOB, MinimizeCost()).best
        assert analysis.fastest.instance_name == fastest.instance_name
        assert analysis.cheapest.instance_name == cheapest.instance_name

    def test_frontier_subset_of_sweep(self, analysis):
        sweep_names = {p.instance_name for p in analysis.predictions}
        assert {p.instance_name for p in analysis.frontier} <= sweep_names
        assert 1 <= len(analysis.frontier) <= len(analysis.predictions)

    def test_no_frontier_point_dominated(self, analysis):
        for point in analysis.frontier:
            for other in analysis.predictions:
                dominated = (
                    other.total_us <= point.total_us
                    and other.cost_dollars < point.cost_dollars
                ) or (
                    other.total_us < point.total_us
                    and other.cost_dollars <= point.cost_dollars
                )
                assert not dominated, (point.instance_name, other.instance_name)

    def test_knee_on_frontier(self, analysis):
        assert analysis.is_efficient(analysis.knee().instance_name)

    def test_best_under_budget(self, analysis):
        cheapest = analysis.cheapest
        pick = analysis.best_under_budget(cheapest.cost_dollars * 1.5)
        assert pick.cost_dollars <= cheapest.cost_dollars * 1.5
        with pytest.raises(RecommendationError):
            analysis.best_under_budget(cheapest.cost_dollars * 0.5)

    def test_budget_pick_matches_fig10_logic(self, analysis):
        """The frontier query and the TotalBudget objective agree."""
        from repro.core.recommend import TotalBudget

        budget = analysis.cheapest.cost_dollars * 2.0
        via_frontier = analysis.best_under_budget(budget)
        # No faster feasible point exists anywhere in the full sweep.
        feasible = [p for p in analysis.predictions if p.cost_dollars <= budget]
        assert via_frontier.total_us == min(p.total_us for p in feasible)

    def test_render(self, analysis):
        text = analysis.render()
        assert "efficient" in text and "knee" in text
