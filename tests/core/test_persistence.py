"""Tests for fitted-estimator persistence."""

import json

import pytest

from repro.errors import ModelingError
from repro.core.persistence import (
    estimator_from_dict,
    estimator_to_dict,
    load_estimator,
    save_estimator,
)
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


class TestRoundTrip:
    def test_predictions_identical(self, ceer_small, tmp_path):
        path = tmp_path / "ceer.json"
        save_estimator(ceer_small, path)
        loaded = load_estimator(path)
        for model in ("inception_v3", "alexnet"):
            for gpu in ("V100", "K80", "T4", "M60"):
                for k in (1, 3):
                    original = ceer_small.predict_training(model, gpu, k, JOB)
                    restored = loaded.predict_training(model, gpu, k, JOB)
                    assert original.total_us == restored.total_us
                    assert original.cost_dollars == restored.cost_dollars

    def test_classification_preserved(self, ceer_small, tmp_path):
        path = tmp_path / "ceer.json"
        save_estimator(ceer_small, path)
        loaded = load_estimator(path)
        original = ceer_small.compute_models.classification
        restored = loaded.compute_models.classification
        assert restored.heavy == original.heavy
        assert restored.light == original.light
        assert restored.cpu == original.cpu
        assert restored.threshold_us == original.threshold_us

    def test_medians_and_flags_preserved(self, ceer_small, tmp_path):
        path = tmp_path / "ceer.json"
        save_estimator(ceer_small, path)
        loaded = load_estimator(path)
        assert loaded.compute_models.light_median_us == (
            ceer_small.compute_models.light_median_us
        )
        assert loaded.compute_models.cpu_median_us == (
            ceer_small.compute_models.cpu_median_us
        )
        assert loaded.include_communication == ceer_small.include_communication
        assert loaded.heavy_only == ceer_small.heavy_only

    def test_comm_r2_preserved(self, ceer_small, tmp_path):
        path = tmp_path / "ceer.json"
        save_estimator(ceer_small, path)
        loaded = load_estimator(path)
        assert loaded.comm_model.r2 == ceer_small.comm_model.r2

    def test_document_is_compact_json(self, ceer_small, tmp_path):
        path = tmp_path / "ceer.json"
        save_estimator(ceer_small, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-ceer-estimator"
        # A fitted Ceer is small: coefficients, not profiles.
        assert path.stat().st_size < 200_000

    def test_variant_flags_round_trip(self, ceer_small, tmp_path):
        from repro.core.baselines import no_comm_variant

        path = tmp_path / "variant.json"
        save_estimator(no_comm_variant(ceer_small), path)
        loaded = load_estimator(path)
        assert loaded.include_communication is False


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ModelingError):
            estimator_from_dict({"format": "nope"})

    def test_wrong_version_rejected(self, ceer_small):
        data = estimator_to_dict(ceer_small)
        data["version"] = 42
        with pytest.raises(ModelingError):
            estimator_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[[[")
        with pytest.raises(ModelingError):
            load_estimator(path)


class TestAtomicWrites:
    def test_overwrite_leaves_no_temp_files(self, ceer_small, tmp_path):
        path = tmp_path / "ceer.json"
        save_estimator(ceer_small, path)
        save_estimator(ceer_small, path)  # overwrite in place
        assert load_estimator(path) is not None
        assert [p.name for p in tmp_path.iterdir()] == ["ceer.json"]

    def test_failed_write_preserves_previous_file(self, ceer_small, tmp_path,
                                                  monkeypatch):
        path = tmp_path / "ceer.json"
        save_estimator(ceer_small, path)
        before = path.read_text()

        import repro.artifacts.store as store_module

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(store_module.os, "replace", boom)
        with pytest.raises(OSError):
            save_estimator(ceer_small, path)
        # The old file is intact and still parses; no torn partial write.
        assert path.read_text() == before
        json.loads(path.read_text())
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []


class TestGoldenSnapshot:
    """The per-GPU backend's serialized bytes are frozen by a golden file.

    The snapshot in ``tests/data/golden_estimator_per_gpu.json`` was
    produced before the backend refactor; a per-GPU fit with the same
    arguments must serialize byte-identically — the refactor (and any
    future change) must not move a single byte of version-1 documents.
    """

    GOLDEN_ARGS = dict(
        train_models=("vgg_11", "inception_v1", "resnet_50", "inception_v4"),
        n_iterations=30,
        gpu_counts=(1, 2),
    )

    def test_per_gpu_fit_matches_pre_refactor_bytes(self):
        from pathlib import Path

        from repro.core.fit import fit_ceer

        golden_path = (
            Path(__file__).parent.parent / "data"
            / "golden_estimator_per_gpu.json"
        )
        golden = golden_path.read_bytes()
        fitted = fit_ceer(**self.GOLDEN_ARGS)
        fresh = json.dumps(estimator_to_dict(fitted.estimator)).encode("utf-8")
        assert fresh == golden

    def test_golden_document_is_version_1(self):
        from pathlib import Path

        golden_path = (
            Path(__file__).parent.parent / "data"
            / "golden_estimator_per_gpu.json"
        )
        doc = json.loads(golden_path.read_text())
        assert doc["version"] == 1
        assert "backend" not in doc
        assert "transfer" not in doc


class TestTransferPersistence:
    """Transfer-backend estimators round-trip through the version-2 format."""

    @pytest.fixture(scope="class")
    def transfer_estimator(self):
        from repro.core.fit import fit_ceer

        return fit_ceer(
            train_models=("vgg_11", "inception_v1", "resnet_50"),
            n_iterations=20, gpu_counts=(1,), backend="transfer",
        ).estimator

    def test_document_is_version_2_with_transfer_block(self, transfer_estimator):
        doc = estimator_to_dict(transfer_estimator)
        assert doc["version"] == 2
        assert doc["backend"] == "transfer"
        assert doc["transfer"]["reference_gpu"] == "V100"
        assert doc["transfer"]["models"]

    def test_roundtrip_preserves_predictions_and_uncertainty(
        self, transfer_estimator, tmp_path
    ):
        path = tmp_path / "transfer.json"
        save_estimator(transfer_estimator, path)
        loaded = load_estimator(path)
        assert loaded.compute_models.backend == "transfer"
        assert (
            loaded.compute_models.heavy_std_us
            == transfer_estimator.compute_models.heavy_std_us
        )
        for gpu in ("V100", "K80", "T4", "M60"):
            original = transfer_estimator.predict_training("alexnet", gpu, 1, JOB)
            restored = loaded.predict_training("alexnet", gpu, 1, JOB)
            assert original.total_us == restored.total_us
            assert original.compute_std_us == restored.compute_std_us

    def test_serialization_is_deterministic(self, transfer_estimator):
        a = json.dumps(estimator_to_dict(transfer_estimator)).encode("utf-8")
        b = json.dumps(estimator_to_dict(transfer_estimator)).encode("utf-8")
        assert a == b

    def test_unknown_version_rejected(self, transfer_estimator):
        doc = estimator_to_dict(transfer_estimator)
        doc["version"] = 99
        with pytest.raises(ModelingError):
            estimator_from_dict(doc)
