"""Preemption model + expected-makespan/cost prediction properties."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.preempt import DEFAULT_PREEMPTION, PreemptionModel
from repro.errors import ModelingError
from repro.units import us_to_hr, usd_per_hr_to_usd
from repro.workloads.dataset import IMAGENET, TrainingJob

JOB = TrainingJob(IMAGENET, batch_size=32)


class TestPreemptionModel:
    def test_default_overhead_is_half_interval_plus_restore(self):
        assert DEFAULT_PREEMPTION.overhead_iterations == 100.0
        model = PreemptionModel(
            checkpoint_interval_iterations=40.0,
            restore_overhead_iterations=10.0,
        )
        assert model.overhead_iterations == 30.0

    def test_negative_fields_rejected(self):
        with pytest.raises(ModelingError):
            PreemptionModel(checkpoint_interval_iterations=-1.0)
        with pytest.raises(ModelingError):
            PreemptionModel(restore_overhead_iterations=-1.0)


class TestExpectedProperties:
    @pytest.fixture(scope="class")
    def base_prediction(self, ceer_small):
        return ceer_small.predict_training("alexnet", "V100", 1, JOB)

    def test_zero_hazard_collapses_bitwise(self, base_prediction):
        """Hazard 0 means the expected path IS the deterministic path."""
        p = base_prediction
        assert p.hazard_per_hr == 0.0
        assert p.expected_makespan_us == p.total_us
        assert p.expected_makespan_hours == p.total_hours
        assert p.expected_cost_usd == p.cost_dollars

    def test_expected_makespan_formula(self, base_prediction):
        p = replace(
            base_prediction, hazard_per_hr=0.1,
            preempt_overhead_iterations=100.0,
        )
        expected_us = p.total_us + (0.1 * p.total_hours) * (
            100.0 * p.per_iteration_us
        )
        assert p.expected_makespan_us == expected_us
        assert p.expected_makespan_hours == us_to_hr(expected_us)
        assert p.expected_cost_usd == usd_per_hr_to_usd(
            p.usd_per_hr, us_to_hr(expected_us)
        )

    def test_expected_cost_monotone_in_hazard(self, base_prediction):
        """More preemption risk can only cost more (same rate, more hours)."""
        costs = [
            replace(
                base_prediction, hazard_per_hr=h,
                preempt_overhead_iterations=100.0,
            ).expected_cost_usd
            for h in (0.0, 0.05, 0.1, 0.25, 1.0)
        ]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_expected_makespan_monotone_in_overhead(self, base_prediction):
        makespans = [
            replace(
                base_prediction, hazard_per_hr=0.1,
                preempt_overhead_iterations=o,
            ).expected_makespan_hours
            for o in (0.0, 50.0, 100.0, 500.0)
        ]
        assert makespans == sorted(makespans)
        assert makespans[0] < makespans[-1]
