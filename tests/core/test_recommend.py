"""Tests for objectives and the instance recommender (Section IV-D)."""

import pytest

from repro.cloud.pricing import MARKET_RATIO
from repro.errors import RecommendationError
from repro.core.estimator import CeerEstimator
from repro.core.recommend import (
    HourlyBudget,
    MinimizeCost,
    MinimizeTime,
    Recommender,
    TotalBudget,
    WeightedTimeCost,
)
from repro.obs.spans import disable_tracing, enable_tracing
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


@pytest.fixture(scope="module")
def recommender(ceer_small):
    return Recommender(ceer_small)


class TestSweep:
    def test_covers_all_candidates(self, recommender):
        predictions = recommender.sweep("inception_v1", JOB)
        assert len(predictions) == 16
        assert {(p.gpu_key, p.num_gpus) for p in predictions} == {
            (g, k) for g in ("V100", "K80", "T4", "M60") for k in (1, 2, 3, 4)
        }

    def test_matches_per_candidate_reference(self, recommender):
        batched = recommender.sweep("inception_v1", JOB)
        reference = recommender.sweep_reference("inception_v1", JOB)
        assert len(batched) == len(reference)
        for got, ref in zip(batched, reference):
            assert got.instance_name == ref.instance_name
            assert got.total_us == pytest.approx(ref.total_us, rel=1e-9)
            assert got.cost_dollars == pytest.approx(ref.cost_dollars, rel=1e-9)

    def test_counts_beyond_catalog_are_skipped_not_fatal(self, ceer_small):
        """gpu_counts past a GPU's biggest host narrow the sweep (M60
        stops at 4) instead of raising."""
        rec = Recommender(ceer_small, gpu_counts=(1, 8))
        predictions = rec.sweep("alexnet", JOB)
        by_gpu = {}
        for p in predictions:
            by_gpu.setdefault(p.gpu_key, set()).add(p.num_gpus)
        assert by_gpu["V100"] == {1, 8}
        assert by_gpu["M60"] == {1}

    def test_tracing_without_engine_does_not_build_engine(self, ceer_small):
        """Regression: the sweep's tracing block used to read
        ``estimator.engine`` unconditionally, forcing the lazy engine
        into existence (and crashing the stats delta) on scalar-path
        estimators whenever tracing was on."""
        scalar = CeerEstimator(
            ceer_small.compute_models, ceer_small.comm_model, use_engine=False
        )
        enable_tracing()
        try:
            predictions = Recommender(scalar).sweep("alexnet", JOB)
        finally:
            disable_tracing()
        assert len(predictions) == 16
        assert scalar._engine is None


class TestObjectives:
    def test_min_time_picks_global_fastest(self, recommender):
        rec = recommender.recommend("inception_v1", JOB, MinimizeTime())
        sweep = recommender.sweep("inception_v1", JOB)
        assert rec.best.total_us == min(p.total_us for p in sweep)

    def test_min_cost_picks_global_cheapest(self, recommender):
        rec = recommender.recommend("inception_v1", JOB, MinimizeCost())
        sweep = recommender.sweep("inception_v1", JOB)
        assert rec.best.cost_dollars == min(p.cost_dollars for p in sweep)

    def test_default_objective_is_min_cost(self, recommender):
        assert recommender.recommend("inception_v1", JOB).objective == "min-cost"

    def test_hourly_budget_feasibility(self, recommender):
        rec = recommender.recommend(
            "inception_v1", JOB, HourlyBudget(budget_usd_per_hr=3.0, slack_usd_per_hr=0.42)
        )
        assert rec.best.usd_per_hr <= 3.42
        assert all(p.usd_per_hr > 3.42 for p in rec.infeasible)

    def test_hourly_budget_unsatisfiable(self, recommender):
        with pytest.raises(RecommendationError):
            recommender.recommend("inception_v1", JOB, HourlyBudget(0.10))

    def test_total_budget_excludes_expensive_runs(self, recommender):
        sweep = recommender.sweep("inception_v1", JOB)
        median_cost = sorted(p.cost_dollars for p in sweep)[8]
        rec = recommender.recommend(
            "inception_v1", JOB, TotalBudget(budget_dollars=median_cost)
        )
        assert rec.best.cost_dollars <= median_cost
        assert rec.infeasible

    def test_weighted_objective(self, recommender):
        time_heavy = recommender.recommend(
            "inception_v1", JOB, WeightedTimeCost(time_weight=1000.0, cost_weight=0.0)
        )
        cost_heavy = recommender.recommend(
            "inception_v1", JOB, WeightedTimeCost(time_weight=0.0, cost_weight=1000.0)
        )
        assert time_heavy.best.total_us <= cost_heavy.best.total_us
        assert cost_heavy.best.cost_dollars <= time_heavy.best.cost_dollars

    def test_ranked_is_sorted(self, recommender):
        rec = recommender.recommend("inception_v1", JOB, MinimizeCost())
        costs = [p.cost_dollars for p in rec.ranked]
        assert costs == sorted(costs)

    def test_market_pricing_changes_winner(self, ceer_small):
        aws = Recommender(ceer_small).recommend("inception_v1", JOB, MinimizeCost())
        market = Recommender(ceer_small, pricing=MARKET_RATIO).recommend(
            "inception_v1", JOB, MinimizeCost()
        )
        # Under market prices the K80 becomes dramatically cheaper (Fig. 12).
        assert market.best.gpu_key == "K80"
        assert aws.best.gpu_key != "K80"

    def test_summary_mentions_instance(self, recommender):
        rec = recommender.recommend("inception_v1", JOB, MinimizeCost())
        assert rec.best.instance_name in rec.summary()
