"""Tests for OLS regression with linear/quadratic model selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelingError
from repro.core.regression import (
    PREDICTION_FLOOR_US,
    RegressionModel,
    fit_proportional,
    fit_regression,
    mean_absolute_percentage_error,
    r_squared,
)


def _linear_data(n=50, slope=3.0, intercept=7.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(1, 100, size=(n, 1))
    y = intercept + slope * x[:, 0] + noise * rng.standard_normal(n)
    return x, y


class TestLinearFit:
    def test_recovers_exact_coefficients(self):
        x, y = _linear_data()
        model = fit_regression(x, y)
        assert model.degree == 1
        assert model.intercept == pytest.approx(7.0, abs=1e-6)
        assert model.coef[0] == pytest.approx(3.0, abs=1e-8)
        assert model.r2 == pytest.approx(1.0)

    def test_multifeature(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(1, 10, size=(80, 3))
        y = 1.0 + x @ np.array([2.0, -1.0, 0.5])
        model = fit_regression(x, y)
        assert np.allclose(model.coef, [2.0, -1.0, 0.5], atol=1e-6)

    def test_prediction_matches_fit(self):
        x, y = _linear_data()
        model = fit_regression(x, y)
        np.testing.assert_allclose(model.predict(x), y, rtol=1e-6)

    def test_predict_one(self):
        x, y = _linear_data()
        model = fit_regression(x, y)
        assert model.predict_one([10.0]) == pytest.approx(37.0, rel=1e-6)

    def test_prediction_floor(self):
        x, y = _linear_data(slope=-5.0, intercept=0.0)
        model = fit_regression(np.abs(x), np.maximum(y, 0.1))
        assert model.predict_one([1000.0]) >= PREDICTION_FLOOR_US


class TestPredictBatch:
    def test_rowwise_equals_predict_one(self):
        """The vectorized path must be semantically identical per row —
        including the floor and the extrapolation clip."""
        x, y = _linear_data(n=80, noise=1.0)
        model = fit_regression(x, y)
        # Queries spanning in-range, floored, and clipped regimes.
        queries = np.array([[0.001], [1.0], [50.0], [1e5], [1e7]])
        batch = model.predict_batch(queries)
        assert batch.shape == (len(queries),)
        for row, got in zip(queries, batch):
            assert got == pytest.approx(model.predict_one(row), rel=1e-12)
        assert batch.min() >= PREDICTION_FLOOR_US
        assert batch.max() <= model.clip_max

    def test_quadratic_batch(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(1, 100, size=(100, 2))
        y = 1.0 + x[:, 0] + 0.2 * x[:, 1] ** 2
        model = fit_regression(x, y)
        assert model.degree == 2
        queries = rng.uniform(1, 100, size=(17, 2))
        for row, got in zip(queries, model.predict_batch(queries)):
            assert got == pytest.approx(model.predict_one(row), rel=1e-12)

    def test_rejects_non_matrix_input(self):
        x, y = _linear_data()
        model = fit_regression(x, y)
        with pytest.raises(ModelingError):
            model.predict_batch(np.array([1.0, 2.0]))


class TestModelSelection:
    def test_quadratic_selected_for_curved_data(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(1, 100, size=(100, 1))
        y = 5.0 + 2.0 * x[:, 0] + 0.3 * x[:, 0] ** 2
        model = fit_regression(x, y)
        assert model.degree == 2
        assert model.r2 > 0.999

    def test_linear_preferred_on_linear_data_with_noise(self):
        x, y = _linear_data(n=200, noise=2.0)
        model = fit_regression(x, y)
        assert model.degree == 1

    def test_quadratic_disabled(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(1, 100, size=(100, 1))
        y = x[:, 0] ** 2
        model = fit_regression(x, y, allow_quadratic=False)
        assert model.degree == 1


class TestValidation:
    def test_too_few_observations(self):
        with pytest.raises(ModelingError):
            fit_regression(np.ones((2, 1)), np.ones(2))

    def test_mismatched_rows(self):
        with pytest.raises(ModelingError):
            fit_regression(np.ones((5, 1)), np.ones(4))

    def test_predict_wrong_feature_count(self):
        x, y = _linear_data()
        model = fit_regression(x, y)
        with pytest.raises(ModelingError):
            model.predict(np.ones((3, 2)))


class TestProportionalFallback:
    def test_through_origin(self):
        x = np.array([[1.0, 9.0], [2.0, 9.0]])
        y = np.array([5.0, 10.0])
        model = fit_proportional(x, y)
        assert model.intercept == 0.0
        assert model.coef[0] == pytest.approx(5.0)
        assert model.coef[1] == 0.0
        assert model.predict_one([3.0, 9.0]) == pytest.approx(15.0)

    def test_single_point_works(self):
        model = fit_proportional(np.array([[4.0]]), np.array([8.0]))
        assert model.predict_one([2.0]) == pytest.approx(4.0)

    def test_zero_feature_rejected(self):
        with pytest.raises(ModelingError):
            fit_proportional(np.zeros((2, 1)), np.ones(2))


class TestMetrics:
    def test_mape(self):
        assert mean_absolute_percentage_error([100, 200], [110, 180]) == pytest.approx(0.1)

    def test_mape_requires_positive_observed(self):
        with pytest.raises(ModelingError):
            mean_absolute_percentage_error([0.0], [1.0])

    def test_r_squared_perfect(self):
        assert r_squared([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r_squared_mean_predictor_zero(self):
        assert r_squared([1.0, 3.0], [2.0, 2.0]) == pytest.approx(0.0)


@settings(max_examples=25)
@given(
    st.floats(0.1, 100.0),
    st.floats(0.0, 1000.0),
    st.integers(10, 60),
)
def test_property_exact_linear_data_always_recovered(slope, intercept, n):
    rng = np.random.default_rng(42)
    x = rng.uniform(1, 50, size=(n, 1))
    y = intercept + slope * x[:, 0]
    model = fit_regression(x, y)
    assert model.r2 > 0.999999
    prediction = model.predict_one([25.0])
    assert prediction == pytest.approx(max(intercept + slope * 25.0, 1.0), rel=1e-4)
