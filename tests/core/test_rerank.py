"""Incremental spot re-ranking: bitwise oracle equivalence + masking."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND
from repro.cloud.spotsim import SpotMarket, SpotMarketConfig
from repro.core.batch import SweepPlan, evaluate_sweep
from repro.core.preempt import DEFAULT_PREEMPTION
from repro.core.recommend import SpotRiskObjective
from repro.core.rerank import SpotRerankSession
from repro.errors import ModelingError, RecommendationError
from repro.workloads.dataset import IMAGENET, TrainingJob

JOB = TrainingJob(IMAGENET, batch_size=32)
BATCHES = (16, 32, 64)


@pytest.fixture(scope="module")
def session(ceer_small):
    return SpotRerankSession.from_estimator(
        ceer_small, "alexnet", JOB, batch_sizes=BATCHES
    )


def oracle_ranking(estimator, market, risk_aversion):
    """Full re-sweep at the tick's pricing, scored via SpotRiskObjective."""
    plan = SweepPlan.full_catalog(
        batch_sizes=BATCHES, pricings=(market.pricing(),)
    )
    result = evaluate_sweep(estimator, "alexnet", JOB, plan)
    hazards = market.hazards_per_hr()
    preds = [
        replace(
            result.prediction(p, g, k, b),
            hazard_per_hr=hazards[plan.gpu_keys[g]],
            preempt_overhead_iterations=DEFAULT_PREEMPTION.overhead_iterations,
        )
        for (p, g, k, b) in result.iter_candidates()
    ]
    objective = SpotRiskObjective(risk_aversion_usd_per_hr=risk_aversion)
    return sorted(preds, key=objective.score), objective


class TestOracleEquivalence:
    @pytest.mark.parametrize("risk_aversion", [0.0, 0.5, 4.0])
    def test_ranking_is_bitwise_identical_to_full_resweep(
        self, ceer_small, session, risk_aversion
    ):
        market = SpotMarket(seed=11)
        for tick in range(3):
            if tick > 0:
                market.tick()
            ranking = session.rerank(
                market.ratios(), market.hazards_per_hr(),
                risk_aversion_usd_per_hr=risk_aversion,
            )
            oracle, objective = oracle_ranking(
                ceer_small, market, risk_aversion
            )
            assert ranking.n_candidates == len(oracle)
            fast = ranking.predictions()
            for got, ref in zip(fast, oracle):
                assert (got.instance_name, got.num_gpus, got.batch_size) == (
                    ref.instance_name, ref.num_gpus, ref.batch_size
                )
            assert np.array_equal(
                ranking.scores,
                np.array([objective.score(p) for p in oracle]),
            )

    def test_materialized_fields_match_oracle_exactly(
        self, ceer_small, session
    ):
        market = SpotMarket(seed=11)
        market.tick()
        best = session.rerank(
            market.ratios(), market.hazards_per_hr()
        ).best()
        oracle, _ = oracle_ranking(ceer_small, market, 0.0)
        ref = oracle[0]
        assert best.usd_per_hr == ref.usd_per_hr
        assert best.expected_cost_usd == ref.expected_cost_usd
        assert best.expected_makespan_hours == ref.expected_makespan_hours
        assert best.hazard_per_hr == ref.hazard_per_hr


class TestMasking:
    def test_missing_ratio_masks_not_raises(self, session):
        """A tick with no quote for a GPU drops its candidates only."""
        market = SpotMarket(seed=11)
        ratios = market.ratios()
        full = session.rerank(ratios)
        del ratios["V100"]
        partial = session.rerank(ratios)
        assert partial.n_candidates < full.n_candidates
        assert all(
            p.gpu_key != "V100" for p in partial.predictions()
        )

    def test_all_masked_yields_empty_ranking(self, session):
        ranking = session.rerank({})
        assert ranking.n_candidates == 0
        with pytest.raises(RecommendationError, match="no spot-priceable"):
            ranking.best()

    def test_rank_out_of_range_raises(self, session):
        market = SpotMarket(seed=11)
        ranking = session.rerank(market.ratios())
        with pytest.raises(RecommendationError, match="outside"):
            ranking.prediction(ranking.n_candidates)


class TestSessionContract:
    def test_multi_pricing_base_rejected(self, ceer_small):
        plan = SweepPlan.full_catalog(
            batch_sizes=(32,), pricings=(ON_DEMAND, MARKET_RATIO)
        )
        base = evaluate_sweep(ceer_small, "alexnet", JOB, plan)
        with pytest.raises(ModelingError, match="single-pricing"):
            SpotRerankSession(base)

    def test_non_on_demand_base_rejected(self, ceer_small):
        plan = SweepPlan.full_catalog(
            batch_sizes=(32,), pricings=(MARKET_RATIO,)
        )
        base = evaluate_sweep(ceer_small, "alexnet", JOB, plan)
        with pytest.raises(ModelingError, match="On-Demand"):
            SpotRerankSession(base)

    def test_negative_risk_aversion_rejected(self, session):
        with pytest.raises(ModelingError, match="risk_aversion"):
            session.rerank({"V100": 0.3}, risk_aversion_usd_per_hr=-1.0)

    def test_default_hazard_is_zero(self, session):
        """hazard_by_gpu=None collapses to the deterministic spot cost."""
        market = SpotMarket(seed=11)
        best = session.rerank(market.ratios()).best()
        assert best.hazard_per_hr == 0.0
        assert best.expected_makespan_us == best.total_us
        assert best.expected_cost_usd == best.cost_dollars

    def test_spot_instance_rebuilt_by_pricing_rule(self, session):
        """Materialised instances follow SpotPricing's naming and rate."""
        market = SpotMarket(seed=11)
        ratios = market.ratios()
        best = session.rerank(ratios).best()
        assert best.instance_name.startswith("spot:")
        base = ON_DEMAND.instance(best.gpu_key, best.num_gpus)
        assert best.usd_per_hr == base.usd_per_hr * ratios[best.gpu_key]

    def test_stable_tie_break_matches_candidate_order(self, session):
        """Equal scores keep the sweep's g-major candidate order (stable
        argsort == stable sorted), so rankings never flap on ties."""
        # Same ratio + zero hazard for every GPU maximises tie pressure
        # between proxy instances that share an hourly rate.
        ranking = session.rerank(
            {key: 0.5 for key in session.plan.gpu_keys}
        )
        scores = ranking.scores
        assert np.all(np.diff(scores) >= 0)
        # Ties, if any, must appear in ascending flat-index order.
        for i in range(len(scores) - 1):
            if scores[i] == scores[i + 1]:
                assert ranking.order[i] < ranking.order[i + 1]
