"""Cross-hardware transfer backend: pooled fits, LOGO, spec-only GPUs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cloud.catalog import admit_gpu, admitted_gpu_keys, clear_admitted
from repro.core.classify import classify_operations
from repro.core.batch import SweepPlan, evaluate_sweep
from repro.core.fit import fit_ceer
from repro.core.transfer import (
    REFERENCE_TRANSFER_GPU,
    device_features,
    fit_transfer_models,
    fit_transfer_op,
    logo_report,
)
from repro.errors import ModelingError
from repro.hardware.gpus import GPU_KEYS, GpuSpec, gpu_spec
from repro.models.zoo import TRAIN_MODELS
from repro.profiling.features import feature_schema
from repro.workloads.dataset import DatasetSpec, TrainingJob

ITERATIONS = 30


@pytest.fixture(scope="module")
def transfer_profiles():
    from repro.profiling.profiler import Profiler

    profiler = Profiler(n_iterations=ITERATIONS)
    return profiler.profile_many(list(TRAIN_MODELS[:4]), list(GPU_KEYS))


@pytest.fixture(scope="module")
def transfer_fitted(transfer_profiles):
    return fit_ceer(
        train_models=TRAIN_MODELS[:4],
        n_iterations=ITERATIONS,
        gpu_counts=(1, 2),
        train_profiles=transfer_profiles,
        backend="transfer",
    )


@pytest.fixture(scope="module")
def transfer_models(transfer_profiles):
    classification = classify_operations(transfer_profiles)
    return fit_transfer_models(transfer_profiles, classification)


def _spec_only_gpu(key: str = "XGPU") -> GpuSpec:
    """A plausible never-profiled GPU between the T4 and the V100."""
    return GpuSpec(
        key=key, family="GX", marketing_name="Spec-Only Test GPU",
        cuda_cores=4096, tensor_cores=256, memory_gb=24,
        peak_gflops=12000.0, memory_bandwidth_gbps=600.0,
        launch_overhead_us=4.0, saturation_elements=1.0e6,
        comm_base_us=4000.0, comm_us_per_mparam=300.0,
    )


@pytest.fixture
def admitted_gpu():
    spec = _spec_only_gpu()
    admit_gpu(spec, usd_per_hr=2.0, max_gpus=4)
    yield spec
    clear_admitted(spec.key)


# ----------------------------------------------------------------------
# device features and collapse
# ----------------------------------------------------------------------

def test_reference_device_features_are_unity():
    ref = gpu_spec(REFERENCE_TRANSFER_GPU)
    assert device_features(ref, ref) == (1.0, 1.0)


def test_slower_device_has_larger_features():
    ref = gpu_spec("V100")
    d0, d1 = device_features(gpu_spec("K80"), ref)
    assert d0 > 1.0 and d1 > 1.0


def test_device_features_reject_nonpositive_spec():
    import dataclasses

    bad = dataclasses.replace(_spec_only_gpu(), peak_gflops=0.0)
    with pytest.raises(ModelingError):
        device_features(bad, gpu_spec("V100"))


def test_collapse_matches_manual_formula(transfer_models):
    """collapse() must equal the documented coefficient arithmetic."""
    spec = gpu_spec("T4")
    ref = gpu_spec(REFERENCE_TRANSFER_GPU)
    d0, d1 = device_features(spec, ref)
    for op_type, model in transfer_models.models.items():
        collapsed = model.collapse(spec, ref)
        assert collapsed.degree == model.degree
        assert collapsed.feature_names == model.feature_names
        assert collapsed.clip_max == model.clip_max
        e0, e1 = model.interaction_coef
        expected_coef = tuple(
            c + d0 * a + d1 * b for c, a, b in zip(model.size_coef, e0, e1)
        )
        assert collapsed.coef == pytest.approx(expected_coef, abs=0.0)
        assert collapsed.intercept == pytest.approx(
            model.intercept + d0 * model.device_coef[0]
            + d1 * model.device_coef[1],
            abs=0.0,
        )


def test_collapse_for_unknown_op_type_is_none(transfer_models):
    assert transfer_models.collapse("V100", "NoSuchOp") is None


def test_proportional_fallback_collapses_to_through_origin():
    schema = feature_schema("Conv2D")
    n_features = len(schema)
    rows = [[float(i + 1)] + [1.0] * (n_features - 1) for i in range(3)]
    targets = [10.0, 20.0, 30.0]
    devices = [(1.0, 1.0)] * 3
    model = fit_transfer_op("Conv2D", rows, targets, devices, schema)
    assert model.proportional
    assert model.intercept == 0.0
    collapsed = model.collapse(
        gpu_spec("K80"), gpu_spec(REFERENCE_TRANSFER_GPU)
    )
    assert collapsed.intercept == 0.0
    d0, _ = device_features(gpu_spec("K80"), gpu_spec(REFERENCE_TRANSFER_GPU))
    assert collapsed.coef[0] == pytest.approx(
        model.interaction_coef[0][0] * d0, abs=0.0
    )
    assert all(c == 0.0 for c in collapsed.coef[1:])


# ----------------------------------------------------------------------
# fitting determinism
# ----------------------------------------------------------------------

def test_transfer_fit_jobs_byte_identical(transfer_profiles):
    classification = classify_operations(transfer_profiles)
    serial = fit_transfer_models(transfer_profiles, classification)
    fanned = fit_transfer_models(transfer_profiles, classification, jobs=8)
    assert serial.train_gpu_keys == fanned.train_gpu_keys
    assert serial.models == fanned.models


def test_logo_jobs_byte_identical(transfer_profiles):
    classification = classify_operations(transfer_profiles)
    serial = logo_report(transfer_profiles, classification)
    fanned = logo_report(transfer_profiles, classification, jobs=8)
    assert (
        json.dumps(serial.to_dict(), sort_keys=True).encode("utf-8")
        == json.dumps(fanned.to_dict(), sort_keys=True).encode("utf-8")
    )


# ----------------------------------------------------------------------
# leave-one-GPU-out report
# ----------------------------------------------------------------------

def test_logo_covers_every_profiled_gpu(transfer_profiles):
    classification = classify_operations(transfer_profiles)
    report = logo_report(transfer_profiles, classification)
    assert sorted(f.gpu_key for f in report.folds) == sorted(GPU_KEYS)
    for fold in report.folds:
        assert fold.n_rows > 0
        assert fold.n_op_types > 0
        assert np.isfinite(fold.transfer_mape) and fold.transfer_mape > 0
        assert np.isfinite(fold.per_gpu_mape) and fold.per_gpu_mape > 0
        # Out-of-sample transfer cannot beat the in-sample paper fit by
        # construction of the comparison; sanity-check the ordering.
        assert fold.transfer_mape >= fold.per_gpu_mape


def test_logo_requires_two_gpus(transfer_profiles):
    classification = classify_operations(transfer_profiles)
    only_v100 = transfer_profiles.filter(lambda r: r.gpu_key == "V100")
    with pytest.raises(ModelingError):
        logo_report(only_v100, classification)


# ----------------------------------------------------------------------
# transfer backend through the estimator stack
# ----------------------------------------------------------------------

def test_transfer_backend_prices_all_builtin_gpus(transfer_fitted):
    estimator = transfer_fitted.estimator
    assert estimator.compute_models.backend == "transfer"
    assert not estimator.compute_models.heavy_models
    for gpu_key in GPU_KEYS:
        t = estimator.predict_iteration_us("resnet_50", gpu_key, 1)
        assert np.isfinite(t) and t > 0


def test_transfer_backend_close_to_per_gpu(transfer_profiles, transfer_fitted):
    """Pooled fits track the paper's per-GPU fits on profiled devices."""
    per_gpu = fit_ceer(
        train_models=TRAIN_MODELS[:4], n_iterations=ITERATIONS,
        gpu_counts=(1, 2), train_profiles=transfer_profiles,
    )
    for gpu_key in GPU_KEYS:
        a = transfer_fitted.estimator.predict_iteration_us("vgg_11", gpu_key, 1)
        b = per_gpu.estimator.predict_iteration_us("vgg_11", gpu_key, 1)
        assert a == pytest.approx(b, rel=0.6)


def test_transfer_prediction_carries_uncertainty(transfer_fitted):
    estimator = transfer_fitted.estimator
    assert estimator.compute_models.heavy_std_us
    job = TrainingJob(DatasetSpec("t", num_samples=64_000), batch_size=32)
    prediction = estimator.predict_training("resnet_50", "T4", 2, job)
    assert prediction.compute_std_us > 0
    assert prediction.total_std_hours > 0
    assert prediction.cost_std_dollars > 0
    # sigma scales linearly with iteration count
    assert prediction.total_std_us == pytest.approx(
        prediction.compute_std_us * prediction.iterations
    )


def test_per_gpu_prediction_has_zero_uncertainty(ceer_small):
    job = TrainingJob(DatasetSpec("t", num_samples=64_000), batch_size=32)
    prediction = ceer_small.predict_training("resnet_50", "T4", 2, job)
    assert prediction.compute_std_us == 0.0
    assert prediction.total_std_hours == 0.0
    assert prediction.cost_std_dollars == 0.0


# ----------------------------------------------------------------------
# spec-only GPUs end to end
# ----------------------------------------------------------------------

def test_spec_only_gpu_end_to_end(transfer_fitted, admitted_gpu):
    estimator = transfer_fitted.estimator
    assert estimator.compute_models.supports_gpu(admitted_gpu.key)
    job = TrainingJob(DatasetSpec("t", num_samples=64_000), batch_size=32)
    prediction = estimator.predict_training(
        "resnet_50", admitted_gpu.key, 2, job
    )
    assert np.isfinite(prediction.total_hours) and prediction.total_hours > 0
    assert np.isfinite(prediction.cost_dollars) and prediction.cost_dollars > 0
    assert prediction.compute_std_us > 0

    plan = SweepPlan.full_catalog(
        batch_sizes=(32,), gpu_keys=tuple(GPU_KEYS) + (admitted_gpu.key,)
    )
    result = evaluate_sweep(estimator, "resnet_50", job, plan)
    assert result.compute_std_us > 0
    swept_keys = {p.gpu_key for p in result.predictions()}
    assert admitted_gpu.key in swept_keys
    frontier = result.frontier()
    assert frontier
    admitted_points = [
        p for p in result.predictions() if p.gpu_key == admitted_gpu.key
    ]
    assert admitted_points
    for p in admitted_points:
        assert np.isfinite(p.total_us) and p.total_us > 0
        assert np.isfinite(p.cost_dollars) and p.cost_dollars > 0


def test_per_gpu_backend_rejects_spec_only_gpu(ceer_small, admitted_gpu):
    assert not ceer_small.compute_models.supports_gpu(admitted_gpu.key)


def test_admitted_keys_are_tracked(admitted_gpu):
    assert admitted_gpu.key in admitted_gpu_keys()
