"""Tests for incremental Ceer updates (unseen-operation retraining)."""

import pytest

from repro.errors import ModelingError, UnseenOperationError
from repro.core.fit import fit_ceer
from repro.core.update import extend_ceer, learn_model
from repro.graph import GraphBuilder
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


def _lrn_free_training_set():
    """Models containing no LRN ops (so LRN is genuinely unseen)."""
    return ("vgg_11", "resnet_50", "inception_v4")


def _lrn_model():
    """A small CNN exercising the LRN operation (as AlexNet does)."""
    b = GraphBuilder("lrn_net", batch_size=32, image_hw=(64, 64), num_classes=10)
    x = b.input()
    x = b.conv(x, 32, 5, stride=2)
    x = b.lrn(x)
    x = b.max_pool(x, 3, 2)
    x = b.conv(x, 64, 3)
    x = b.lrn(x)
    x = b.global_avg_pool(x)
    return b.finalize(b.dense(x, 10, activation=None))


@pytest.fixture(scope="module")
def strict_fitted():
    return fit_ceer(
        train_models=_lrn_free_training_set(),
        n_iterations=60,
        gpu_counts=(1, 2),
        strict_unseen=True,
    )


class TestUnseenOperationFlow:
    def test_unseen_op_raises_in_strict_mode(self, strict_fitted):
        """The paper's limitation: a never-profiled heavy op fails."""
        with pytest.raises(UnseenOperationError):
            strict_fitted.estimator.predict_iteration_us(_lrn_model(), "V100", 1)

    def test_learn_model_resolves_it(self, strict_fitted):
        updated = learn_model(
            strict_fitted, _lrn_model(), gpu_keys=("V100", "K80", "T4", "M60"),
            n_iterations=60,
        )
        prediction = updated.estimator.predict_iteration_us(_lrn_model(), "V100", 1)
        assert prediction > 0
        assert updated.estimator.compute_models.classification.knows("LRN")

    def test_update_preserves_existing_accuracy(self, strict_fitted):
        before = strict_fitted.estimator.predict_iteration_us("vgg_19", "T4", 1)
        updated = learn_model(
            strict_fitted, _lrn_model(), gpu_keys=("V100", "K80", "T4", "M60"),
            n_iterations=60,
        )
        after = updated.estimator.predict_iteration_us("vgg_19", "T4", 1)
        assert abs(after - before) / before < 0.05

    def test_comm_model_reused(self, strict_fitted):
        updated = learn_model(
            strict_fitted, _lrn_model(), gpu_keys=("V100",), n_iterations=60
        )
        assert updated.estimator.comm_model is strict_fitted.estimator.comm_model


class TestExtendCeer:
    def test_diagnostics_merged(self, strict_fitted):
        profiles = Profiler(n_iterations=60).profile_many(
            [_lrn_model()], ["V100"]
        )
        updated = extend_ceer(strict_fitted, profiles)
        assert "lrn_net" in updated.diagnostics.train_models
        assert updated.diagnostics.n_profile_records > (
            strict_fitted.diagnostics.n_profile_records
        )

    def test_empty_profiles_rejected(self, strict_fitted):
        with pytest.raises(ModelingError):
            extend_ceer(strict_fitted, ProfileDataset([]))

    def test_original_fitted_unchanged(self, strict_fitted):
        n_before = strict_fitted.diagnostics.n_profile_records
        profiles = Profiler(n_iterations=60).profile_many([_lrn_model()], ["V100"])
        extend_ceer(strict_fitted, profiles)
        assert strict_fitted.diagnostics.n_profile_records == n_before
