"""Tests for the shared experiment infrastructure (caching, setup)."""

import pytest

from repro.experiments.common import (
    FAMILY_LABELS,
    IMAGENET_JOB,
    SCALING_JOB,
    observed_training,
    training_profiles,
)

N = 40


class TestCaches:
    def test_training_profiles_cached_per_iteration_count(self):
        a = training_profiles(N)
        b = training_profiles(N)
        assert a is b  # lru_cache identity

    def test_different_iteration_counts_distinct(self):
        a = training_profiles(N)
        b = training_profiles(N + 1)
        assert a is not b

    def test_observed_training_cached(self):
        a = observed_training("inception_v1", "T4", 1, SCALING_JOB, N)
        b = observed_training("inception_v1", "T4", 1, SCALING_JOB, N)
        assert a is b

    def test_observed_uses_evaluation_seed(self):
        """Evaluation measurements must be statistically independent of the
        profiles Ceer trains on (different seed context)."""
        from repro.sim.trainer import measure_training

        cached = observed_training("inception_v1", "T4", 1, SCALING_JOB, N)
        train_seeded = measure_training(
            "inception_v1", "T4", 1, SCALING_JOB, n_profile_iterations=N,
            seed_context="",
        )
        assert cached.per_iteration_us != train_seeded.per_iteration_us


class TestCanonicalSetup:
    def test_family_labels_cover_all_gpus(self):
        assert dict(FAMILY_LABELS) == {
            "V100": "P3", "K80": "P2", "T4": "G4", "M60": "G3",
        }

    def test_imagenet_job_matches_paper(self):
        assert IMAGENET_JOB.dataset.num_samples == 1_200_000
        assert IMAGENET_JOB.batch_size == 32

    def test_scaling_job_matches_fig6(self):
        assert SCALING_JOB.dataset.num_samples == 6_400
        assert SCALING_JOB.batch_size == 32
