"""Integration tests for the figure drivers (reduced iteration counts).

Each driver must run end-to-end, render, and satisfy the *structural*
properties of its paper figure; the quantitative paper-vs-measured
comparison lives in tests/test_paper_claims.py and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    run_ablations,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)
from repro.hardware.gpus import GPU_KEYS

N = 80  # reduced from the canonical 300 for test speed


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self, train_profiles_small):
        return run_fig2(train_profiles_small)

    def test_all_heavy_ops_on_all_gpus(self, result):
        for per_gpu in result.mean_us.values():
            assert set(per_gpu) == set(GPU_KEYS)

    def test_p3_fastest_per_op(self, result):
        for op_type, per_gpu in result.mean_us.items():
            assert min(per_gpu, key=per_gpu.get) == "V100", op_type

    def test_render(self, result):
        text = result.render()
        assert "Conv2D" in text and "P2/P3" in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, train_profiles_small):
        return run_fig3(train_profiles_small)

    def test_winner_tally_consistent(self, result):
        assert result.g4_win_count + result.p3_win_count <= len(result.cheapest_gpu)
        assert result.p3_win_count == len(result.p3_wins)

    def test_costs_positive(self, result):
        for per_gpu in result.cost_nano_dollars.values():
            assert all(v > 0 for v in per_gpu.values())

    def test_render(self, result):
        assert "cheapest-GPU tally" in result.render()


class TestFig4:
    def test_relu_default(self, train_profiles_small):
        result = run_fig4(profiles=train_profiles_small)
        assert result.op_type == "Relu"
        for gpu_key, fit in result.fits.items():
            assert fit.r2 > 0.9, gpu_key
            assert len(result.points[gpu_key]) > 100

    def test_quadratic_op(self, train_profiles_small):
        result = run_fig4("Conv2DBackpropFilter", profiles=train_profiles_small)
        assert "Conv2DBackpropFilter" in result.render()


class TestFig5:
    def test_structure(self, train_profiles_small):
        result = run_fig5(train_profiles_small)
        assert set(result.heavy_by_gpu) == set(GPU_KEYS)
        assert result.light_values and result.cpu_values
        assert "p95" in result.render()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(n_iterations=N)

    def test_all_cells_present(self, result):
        assert set(result.training_time_us) == {
            (g, k) for g in GPU_KEYS for k in (1, 2, 3, 4)
        }

    def test_time_decreases_with_gpus(self, result):
        for g in GPU_KEYS:
            times = [result.training_time_us[(g, k)] for k in (1, 2, 3, 4)]
            assert times == sorted(times, reverse=True)

    def test_diminishing_returns(self, result):
        """Marginal reduction shrinks with each added GPU (Section III-D)."""
        for g in GPU_KEYS:
            r2 = result.reduction(g, 2)
            r3 = result.reduction(g, 3)
            r4 = result.reduction(g, 4)
            assert r2 > (r3 - r2) > (r4 - r3)

    def test_render(self, result):
        assert "inception_v1" in result.render()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(
            models=("inception_v1", "vgg_11", "resnet_50", "inception_v4"),
            gpu_counts=(1, 2), n_iterations=N,
        )

    def test_fits_per_gpu_and_k(self, result):
        assert set(result.model.models) == {
            (g, k) for g in GPU_KEYS for k in (1, 2)
        }

    def test_linearity(self, result):
        assert all(r2 > 0.85 for r2 in result.model.r2.values())

    def test_positive_slopes(self, result):
        for fit in result.model.models.values():
            assert fit.coef[0] > 0

    def test_scatter_points(self, result):
        assert len(result.points("V100", 2)) == 4
        assert "slope" in result.render()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self, ceer_small):
        return run_fig8(estimator=ceer_small, n_iterations=N)

    def test_low_error(self, result):
        assert result.average_error < 0.10

    def test_perfect_ranking(self, result):
        for model in ("inception_v3", "alexnet", "resnet_101", "vgg_19"):
            assert result.ranking_correct(model), model

    def test_p3_fastest(self, result):
        for versus in ("K80", "M60", "T4"):
            assert result.p3_time_reduction(versus) > 0

    def test_g4_cheapest(self, result):
        for model in ("inception_v3", "alexnet", "resnet_101", "vgg_19"):
            assert result.cheapest_gpu(model) == "T4"

    def test_render(self, result):
        assert "average training-time prediction error" in result.render()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self, ceer_small):
        return run_fig9(estimator=ceer_small, n_iterations=N)

    def test_paper_budget_configs(self, result):
        """$3/hr + slack selects 3xP2, 3xG3, 3xG4 proxies and 1xP3."""
        configs = {(i.gpu_key, i.num_gpus) for i in result.configs}
        assert configs == {("K80", 3), ("M60", 3), ("T4", 3), ("V100", 1)}

    def test_ceer_picks_match_observed(self, result):
        for model in ("inception_v3", "alexnet", "resnet_101", "vgg_19"):
            assert result.best_config(model) == result.best_config(model, True)

    def test_cnn_dependent_winners(self, result):
        """The optimal choice depends on the CNN (the Fig. 9 headline)."""
        winners = {
            result.best_config(m)
            for m in ("inception_v3", "alexnet", "resnet_101", "vgg_19")
        }
        assert len(winners) >= 2

    def test_render(self, result):
        assert "P3-default penalty" in result.render()


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self, ceer_small):
        return run_fig10(estimator=ceer_small, n_iterations=N)

    def test_feasibility_agreement_high(self, result):
        assert result.feasibility_agreement() >= 0.9

    def test_ceer_pick_matches_observed_optimum(self, result):
        assert result.best_config(False) == result.best_config(True)

    def test_all_p2_infeasible(self, result):
        feasible_gpus = {g for g, _ in result.feasible(False)}
        assert "K80" not in feasible_gpus

    def test_cheapest_rate_much_slower(self, result):
        assert result.cheapest_rate_penalty() > 5.0

    def test_render(self, result):
        assert "observed optimum" in result.render()


class TestFig11And12:
    def test_aws_winner_is_g4_single(self, ceer_small):
        result = run_fig11(estimator=ceer_small, n_iterations=N)
        assert result.best_config(False) == ("T4", 1)
        assert result.best_config(True) == ("T4", 1)
        assert result.average_error() < 0.10

    def test_market_winner_is_p2_single(self, ceer_small):
        result = run_fig12(estimator=ceer_small, n_iterations=N)
        assert result.best_config(False) == ("K80", 1)
        assert result.best_config(True) == ("K80", 1)
        assert result.pricing_name == "market-ratio"


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablations(gpu_counts=(1, 4), n_iterations=N)

    def test_full_ceer_most_accurate(self, result):
        full = result.mean_error("ceer (full)")
        for variant in result.errors:
            assert full <= result.mean_error(variant) + 1e-9

    def test_no_comm_ablation_hurts(self, result):
        assert result.mean_error("no-communication (Eq. 1)") > 2 * result.mean_error(
            "ceer (full)"
        )

    def test_heavy_only_ablation_hurts(self, result):
        assert result.mean_error("heavy-ops-only") > result.mean_error("ceer (full)")

    def test_strategies_cost_more(self, result):
        assert all(ratio > 1.2 for ratio in result.strategy_cost_ratio.values())

    def test_render(self, result):
        assert "strategy cost" in result.render()
