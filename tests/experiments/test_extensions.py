"""Tests for the extension studies (multi-host, sensitivity, estimator choice)."""

import pytest

from repro.experiments.extensions import (
    run_estimator_choice_study,
    run_multihost_study,
    run_sensitivity_study,
)
from repro.sim.dataparallel import comm_overhead_base_us

N = 60


class TestPlacementGroundTruth:
    def test_multihost_slower_for_multi_gpu(self):
        single = comm_overhead_base_us("T4", 4, 25_000_000, placement="single-host")
        multi = comm_overhead_base_us("T4", 4, 25_000_000, placement="multi-host")
        assert multi > 1.5 * single

    def test_single_gpu_placement_independent(self):
        single = comm_overhead_base_us("T4", 1, 25_000_000, placement="single-host")
        multi = comm_overhead_base_us("T4", 1, 25_000_000, placement="multi-host")
        assert single == multi

    def test_unknown_placement_rejected(self):
        from repro.errors import HardwareError

        with pytest.raises(HardwareError):
            comm_overhead_base_us("T4", 2, 1_000_000, placement="rack-scale")


class TestMultiHostStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multihost_study(n_iterations=N)

    def test_multihost_scales_worse(self, result):
        for gpu in ("V100", "K80", "T4", "M60"):
            assert result.reduction("multi-host", gpu, 4) < result.reduction(
                "single-host", gpu, 4
            )

    def test_retrained_ceer_recovers_accuracy(self, result):
        """Section VI: the comm model must be retrained for a new topology;
        the retrained estimator is much more accurate on it."""
        stale = result.multihost_errors["single-host Ceer (stale comm model)"]
        retrained = result.multihost_errors[
            "multi-host Ceer (retrained, Section VI)"
        ]
        assert retrained < stale / 2
        assert retrained < 0.08

    def test_render(self, result):
        assert "placement study" in result.render()


class TestSensitivityStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sensitivity_study(sizes=(3, 8), n_iterations=N)

    def test_more_training_models_not_worse(self, result):
        errors = {size: err for size, (_, err) in result.by_size.items()}
        assert errors[8] <= errors[3] * 1.5  # larger sets don't regress much

    def test_all_sizes_usable(self, result):
        for size, (models, error) in result.by_size.items():
            assert len(models) == size
            assert error < 0.20

    def test_render(self, result):
        assert "training-set size" in result.render()


class TestEstimatorChoiceStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_estimator_choice_study(n_iterations=N)

    def test_both_choices_evaluated(self, result):
        assert set(result.errors) == {"median", "mean"}

    def test_median_is_smaller_estimate(self, result):
        """The median sits below the mean for the right-skewed light-op
        distribution — the robustness property the paper invokes."""
        assert result.light_estimates_us["median"] < result.light_estimates_us["mean"]
        assert result.cpu_estimates_us["median"] < result.cpu_estimates_us["mean"]

    def test_both_choices_accurate(self, result):
        assert all(err < 0.06 for err in result.errors.values())

    def test_render(self, result):
        assert "median" in result.render()


class TestTransformerStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.extensions import run_transformer_study

        return run_transformer_study(n_iterations=N)

    def test_strict_mode_refuses_unseen_ops(self, result):
        """Section VI's limitation, observed: a CNN-trained Ceer cannot
        price a Transformer's BatchMatMul/LayerNorm/Gelu kernels."""
        assert result.strict_raises

    def test_fallback_is_useless(self, result):
        """The light-median fallback is wildly wrong on Transformers."""
        fallback = result.errors["CNN-trained Ceer (light-median fallback)"]
        assert fallback > 0.5

    def test_one_update_restores_accuracy(self, result):
        """Learning from a single Transformer generalises to other
        depth/width configurations (held-out presets)."""
        updated = result.errors["after learn_model on one Transformer"]
        assert updated < 0.15
        assert updated < result.errors["CNN-trained Ceer (light-median fallback)"] / 5

    def test_render(self, result):
        assert "Transformers" in result.render()


class TestBatchSizeStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.extensions import run_batch_size_study

        return run_batch_size_study(n_iterations=N)

    def test_fitted_batch_most_accurate_or_close(self, result):
        fitted_error = result.errors[result.fitted_batch]
        assert fitted_error < 0.06

    def test_extrapolation_stays_useful(self, result):
        """Ceer's size-based features generalise across batch sizes: the
        extrapolated errors stay within a few percent."""
        for batch, error in result.errors.items():
            assert error < 0.12, batch

    def test_render(self, result):
        assert "batch-size generalisation" in result.render()


class TestRnnStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.extensions import run_rnn_study

        return run_rnn_study(n_iterations=N)

    def test_update_improves_dramatically(self, result):
        before = result.errors["CNN-trained Ceer (fallback)"]
        after = result.errors["after learn_model on one LSTM"]
        assert after < before / 5

    def test_updated_error_usable(self, result):
        """RNN accuracy is weaker than CNNs/Transformers (tiny launch-bound
        kernels violate the size-scaling assumption) but stays bounded."""
        assert result.errors["after learn_model on one LSTM"] < 0.35

    def test_v100_loses_to_t4_on_lstms(self, result):
        """The emergent utilization effect: LSTM steps are too small to
        saturate a V100, so the nominally slower T4 wins outright."""
        assert result.v100_over_t4_time_ratio > 1.0

    def test_render(self, result):
        assert "RNNs/LSTMs" in result.render()
