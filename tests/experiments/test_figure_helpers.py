"""Unit tests for figure-driver helper logic (no heavy simulation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.catalog import instance_for
from repro.experiments.fig9_hourly_budget import affordable_configs


class TestBudgetConfigs:
    def test_paper_candidate_set(self):
        """$3/hr with the paper's 42-cent slack selects exactly the
        configurations Section V enumerates."""
        configs = {
            (i.gpu_key, i.num_gpus, round(i.usd_per_hr, 3))
            for i in affordable_configs()
        }
        assert configs == {
            ("V100", 1, 3.06),
            ("K80", 3, 2.70),
            ("T4", 3, 2.934),
            ("M60", 3, 3.42),
        }

    def test_no_slack_drops_p3_and_g3(self):
        """Without the slack, neither the $3.06 P3 nor the $3.42 3-GPU G3
        fits — the accommodation the paper spells out."""
        keys = {i.gpu_key for i in affordable_configs(slack_usd_per_hr=0.0)}
        assert "V100" not in keys
        configs = {(i.gpu_key, i.num_gpus) for i in affordable_configs(slack_usd_per_hr=0.0)}
        assert ("M60", 2) in configs  # largest affordable G3 shrinks to 2

    def test_bigger_budget_bigger_instances(self):
        big = {(i.gpu_key, i.num_gpus) for i in affordable_configs(budget_usd_per_hr=13.0)}
        assert ("V100", 4) in big

    @given(st.floats(1.0, 20.0))
    def test_every_selected_config_fits(self, budget):
        for instance in affordable_configs(budget_usd_per_hr=budget, slack_usd_per_hr=0.0):
            assert instance.usd_per_hr <= budget


class TestProxyPricingProperties:
    @given(st.sampled_from(["V100", "K80", "T4", "M60"]), st.integers(2, 4))
    def test_proxy_per_gpu_rate_matches_host(self, gpu, k):
        """Prorated proxies charge exactly the host's per-GPU rate: a
        2-GPU and a 3-GPU slice of the same host cost the same per GPU."""
        base = instance_for(gpu, 2).usd_per_hr / 2
        rate = instance_for(gpu, k).usd_per_hr / k
        assert rate == pytest.approx(base)

    @given(st.sampled_from(["V100", "K80", "T4", "M60"]), st.integers(1, 4))
    def test_proxy_name_encodes_fraction(self, gpu, k):
        inst = instance_for(gpu, k)
        if inst.proxy_of is not None:
            assert "[" in inst.name and "]" in inst.name
            assert inst.num_gpus == k
