"""Tests for the backward-pass expansion (autodiff over the layer tape)."""

import pytest

from repro.graph import GraphBuilder

from tests.conftest import build_tiny_graph


def _counts(graph):
    return graph.op_type_counts()


class TestBackwardOps:
    def test_every_forward_kernel_has_its_gradient(self):
        g = build_tiny_graph()
        c = _counts(g)
        assert c["Conv2DBackpropFilter"] == c["Conv2D"] == 2
        # First conv consumes the network input: no input gradient for it.
        assert c["Conv2DBackpropInput"] == 1
        assert c["MaxPoolGrad"] == 1 and c["AvgPoolGrad"] == 1
        assert c["FusedBatchNormGradV3"] == c["FusedBatchNormV3"] == 2
        assert c["ReluGrad"] == c["Relu"]

    def test_backward_shapes_mirror_forward(self):
        g = build_tiny_graph()
        conv = g.ops_of_type("Conv2D")[1]
        bpi = g.ops_of_type("Conv2DBackpropInput")[0]
        assert bpi.outputs[0] == conv.inputs[0]
        bpf = g.ops_of_type("Conv2DBackpropFilter")
        for op in bpf:
            assert op.outputs[0].rank == 4  # filter gradient, HWIO

    def test_residual_fanout_creates_addn(self):
        g = build_tiny_graph()
        # The pooled tensor feeds both the shortcut and the conv branch; its
        # gradient contributions must be summed with an AddN.
        assert _counts(g).get("AddN", 0) >= 1

    def test_linear_chain_has_no_addn(self):
        b = GraphBuilder("chain", batch_size=2, image_hw=(16, 16), num_classes=5)
        x = b.input()
        x = b.conv(x, 8, 3)
        x = b.flatten(x)
        g = b.finalize(b.dense(x, 5, activation=None))
        assert "AddN" not in _counts(g)

    def test_concat_gradient(self):
        b = GraphBuilder("cc", batch_size=2, image_hw=(16, 16), num_classes=5)
        x = b.input()
        a = b.conv(x, 4, 1)
        c = b.conv(x, 4, 1)
        y = b.concat([a, c])
        g = b.finalize(b.dense(b.flatten(y), 5, activation=None))
        concat_grads = g.ops_of_type("ConcatGrad")
        assert len(concat_grads) == 1
        assert len(concat_grads[0].outputs) == 2

    def test_bias_gradient_per_biased_layer(self):
        b = GraphBuilder("bias", batch_size=2, image_hw=(16, 16), num_classes=5)
        x = b.input()
        x = b.conv(x, 8, 3)  # use_bias defaults True
        g = b.finalize(b.dense(b.flatten(x), 5, activation=None))
        # conv bias + dense bias
        assert len(g.ops_of_type("BiasAddGrad")) == 2

    def test_dense_backward_matmuls(self):
        b = GraphBuilder("fc", batch_size=2, image_hw=(8, 8), num_classes=5)
        x = b.input()
        x = b.flatten(x)
        x = b.dense(x, 32)
        g = b.finalize(b.dense(x, 5, activation=None))
        # Forward 2 + per dense: dW always, dx only for the second layer
        # (the first consumes the flattened input... which is reshaped data,
        # still differentiated through the Reshape).
        matmuls = g.ops_of_type("MatMul")
        assert len(matmuls) == 2 + 2 + 2

    def test_lrn_gradient(self):
        b = GraphBuilder("lrn", batch_size=2, image_hw=(16, 16), num_classes=5)
        x = b.input()
        x = b.conv(x, 8, 3)
        x = b.lrn(x)
        g = b.finalize(b.dense(b.flatten(x), 5, activation=None))
        assert len(g.ops_of_type("LRNGrad")) == 1

    def test_dropout_backward_is_mul(self):
        b = GraphBuilder("dr", batch_size=2, image_hw=(8, 8), num_classes=5)
        x = b.input()
        x = b.flatten(x)
        x = b.dropout(x, 0.5)
        g = b.finalize(b.dense(x, 5, activation=None))
        # forward dropout Mul + backward Mul
        assert len(g.ops_of_type("Mul")) == 2

    def test_gradients_flow_through_pad(self):
        b = GraphBuilder("pad", batch_size=2, image_hw=(16, 16), num_classes=5)
        x = b.input()
        x = b.pad(x, 1, 1)
        x = b.conv(x, 4, 3, padding="VALID")
        g = b.finalize(b.dense(b.flatten(x), 5, activation=None))
        assert len(g.ops_of_type("Slice")) == 1

    def test_every_variable_gets_an_update(self):
        g = build_tiny_graph()
        assert len(g.ops_of_type("ApplyMomentum")) == g.num_variables

    def test_graph_is_valid_dag_after_autodiff(self):
        g = build_tiny_graph()
        g.validate()  # no cycles, no dangling producers
