"""Tests for the functional graph builder (forward construction)."""

import pytest

from repro.errors import GraphError, ShapeError
from repro.graph import GraphBuilder
from repro.graph.ops import Device

from tests.conftest import build_tiny_graph


def _builder(**kwargs):
    defaults = dict(name="t", batch_size=4, image_hw=(32, 32), num_classes=10)
    defaults.update(kwargs)
    return GraphBuilder(**defaults)


class TestInputPipeline:
    def test_input_emits_host_ops(self):
        b = _builder()
        x = b.input()
        cpu_ops = [op for op in b.graph if op.device is Device.CPU]
        assert {op.op_type for op in cpu_ops} >= {
            "IteratorGetNext", "DecodeAndResize", "SparseToDense", "Cast",
        }
        assert x.shape.dims == (4, 32, 32, 3)

    def test_input_twice_rejected(self):
        b = _builder()
        b.input()
        with pytest.raises(GraphError):
            b.input()


class TestConv:
    def test_conv_shapes_and_variables(self):
        b = _builder()
        x = b.input()
        y = b.conv(x, filters=8, kernel=3, scope="c")
        assert y.shape.dims == (4, 32, 32, 8)
        names = {v.name for v in b.variables}
        assert "c/weights" in names and "c/bias" in names

    def test_conv_strided_valid(self):
        b = _builder(image_hw=(227, 227))
        x = b.input()
        y = b.conv(x, filters=96, kernel=11, stride=4, padding="VALID")
        assert y.shape.dims == (4, 55, 55, 96)

    def test_batch_norm_replaces_bias(self):
        b = _builder()
        x = b.input()
        b.conv(x, filters=8, kernel=3, batch_norm=True, scope="c")
        names = {v.name for v in b.variables}
        assert {"c/weights", "c/gamma", "c/beta"} <= names
        assert "c/bias" not in names
        assert len(b.graph.ops_of_type("FusedBatchNormV3")) == 1

    def test_activation_none_skips_relu(self):
        b = _builder()
        x = b.input()
        b.conv(x, filters=8, kernel=3, activation=None)
        assert not b.graph.ops_of_type("Relu")

    def test_non_square_kernel(self):
        b = _builder()
        x = b.input()
        y = b.conv(x, filters=8, kernel=(1, 7))
        assert y.shape.dims == (4, 32, 32, 8)
        conv = b.graph.ops_of_type("Conv2D")[0]
        assert conv.attrs["kernel"] == (1, 7)


class TestOtherLayers:
    def test_pool_shapes(self):
        b = _builder()
        x = b.input()
        assert b.max_pool(x, 2, 2).shape.dims == (4, 16, 16, 3)

    def test_concat_channels(self):
        b = _builder()
        x = b.input()
        a = b.conv(x, 4, 1)
        c = b.conv(x, 6, 1)
        assert b.concat([a, c]).shape.channels == 10

    def test_concat_mismatched_spatial_rejected(self):
        b = _builder()
        x = b.input()
        a = b.conv(x, 4, 3)
        c = b.max_pool(x, 2, 2)
        with pytest.raises(ShapeError):
            b.concat([a, c])

    def test_concat_needs_two_inputs(self):
        b = _builder()
        x = b.input()
        with pytest.raises(GraphError):
            b.concat([x])

    def test_add_requires_matching_shapes(self):
        b = _builder()
        x = b.input()
        a = b.conv(x, 4, 3)
        c = b.conv(x, 8, 3)
        with pytest.raises(ShapeError):
            b.add(a, c)

    def test_flatten_then_dense(self):
        b = _builder()
        x = b.input()
        x = b.flatten(x)
        assert x.shape.dims == (4, 32 * 32 * 3)
        y = b.dense(x, 10, activation=None)
        assert y.shape.dims == (4, 10)

    def test_dense_requires_rank_2(self):
        b = _builder()
        x = b.input()
        with pytest.raises(ShapeError):
            b.dense(x, 10)

    def test_global_avg_pool(self):
        b = _builder()
        x = b.input()
        assert b.global_avg_pool(x).shape.dims == (4, 3)

    def test_pad(self):
        b = _builder()
        x = b.input()
        assert b.pad(x, 1, 2).shape.dims == (4, 34, 36, 3)

    def test_scale_preserves_shape(self):
        b = _builder()
        x = b.input()
        assert b.scale(x, 0.17).shape == x.shape

    def test_unknown_activation_rejected(self):
        b = _builder()
        x = b.input()
        with pytest.raises(ValueError):
            b.conv(x, 4, 3, activation="swish")

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(GraphError):
            _builder(optimizer="adam")


class TestFinalize:
    def test_finalize_validates_logits_shape(self):
        b = _builder()
        x = b.input()
        x = b.flatten(x)
        wrong = b.dense(x, 7, activation=None)
        with pytest.raises(ShapeError):
            b.finalize(wrong)

    def test_finalize_requires_input(self):
        b = _builder()
        with pytest.raises(GraphError):
            b.finalize(None)

    def test_finalize_twice_rejected(self):
        b = _builder()
        x = b.input()
        logits = b.dense(b.flatten(x), 10, activation=None)
        b.finalize(logits)
        with pytest.raises(GraphError):
            b.finalize(logits)

    def test_emit_after_finalize_rejected(self):
        b = _builder()
        x = b.input()
        b.finalize(b.dense(b.flatten(x), 10, activation=None))
        with pytest.raises(GraphError):
            b.conv(x, 4, 3)

    def test_parameter_count_matches_manual(self):
        g = build_tiny_graph()
        # c1: 3*3*3*16 w + 16 gamma + 16 beta; c2: 3*3*16*16 + 16 + 16;
        # head: (16*16*16 -> wait, flatten of 8x8x16) ...
        expected_c1 = 3 * 3 * 3 * 16 + 32
        expected_c2 = 3 * 3 * 16 * 16 + 32
        head_in = 8 * 8 * 16
        expected_head = head_in * 10 + 10
        assert g.num_parameters == expected_c1 + expected_c2 + expected_head

    def test_num_variables_counted(self):
        g = build_tiny_graph()
        assert g.num_variables == 3 + 3 + 2  # two BN convs + dense(w, b)

    def test_one_optimizer_op_per_variable(self):
        g = build_tiny_graph()
        assert len(g.ops_of_type("ApplyMomentum")) == g.num_variables

    def test_unique_scope_suffixing(self):
        b = _builder()
        x = b.input()
        b.conv(x, 4, 3)  # default scope "conv"
        b.conv(x, 4, 3)  # must not collide
        convs = b.graph.ops_of_type("Conv2D")
        assert len({op.name for op in convs}) == 2
