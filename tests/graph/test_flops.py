"""Tests for per-op FLOP counts and memory-traffic estimates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError, UnknownOpError
from repro.graph.flops import flop_count, graph_flops, memory_bytes
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape


def _conv(op_type="Conv2D", batch=2, hw=8, kh=3, kw=3, ic=4, oc=16):
    x = TensorShape.of(batch, hw, hw, ic)
    f = TensorShape.of(kh, kw, ic, oc)
    y = TensorShape.of(batch, hw, hw, oc)
    if op_type == "Conv2D":
        inputs, outputs = (x, f), (y,)
    elif op_type == "Conv2DBackpropInput":
        inputs, outputs = (y, f), (x,)
    else:  # Conv2DBackpropFilter
        inputs, outputs = (x, y, f), (f,)
    return Operation(
        name=f"t/{op_type}", op_type=op_type, inputs=inputs, outputs=outputs,
        attrs={"kernel": (kh, kw), "strides": (1, 1), "padding": "SAME"},
    )


class TestConvFlops:
    def test_forward_conv_exact(self):
        op = _conv()
        # 2 * |y| * KH*KW*IC = 2 * (2*8*8*16) * 3*3*4
        assert flop_count(op) == 2 * (2 * 8 * 8 * 16) * 3 * 3 * 4

    def test_backprop_input_matches_forward_volume(self):
        assert flop_count(_conv("Conv2DBackpropInput")) == flop_count(_conv())

    def test_backprop_filter_matches_forward_volume(self):
        assert flop_count(_conv("Conv2DBackpropFilter")) == flop_count(_conv())

    def test_missing_kernel_attr_raises(self):
        op = Operation(
            name="bad", op_type="Conv2D",
            inputs=(TensorShape.of(1, 4, 4, 1), TensorShape.of(3, 3, 1, 1)),
            outputs=(TensorShape.of(1, 4, 4, 1),),
        )
        with pytest.raises(ShapeError):
            flop_count(op)

    @given(st.integers(1, 8), st.integers(1, 16), st.integers(1, 16))
    def test_forward_flops_scale_linearly_with_channels(self, batch, ic, oc):
        base = flop_count(_conv(batch=batch, ic=ic, oc=oc))
        double_oc = flop_count(_conv(batch=batch, ic=ic, oc=2 * oc))
        assert double_oc == 2 * base


class TestMatMulFlops:
    def _matmul(self, a, b, out):
        return Operation(
            name="t/MatMul", op_type="MatMul",
            inputs=(TensorShape.of(*a), TensorShape.of(*b)),
            outputs=(TensorShape.of(*out),),
        )

    def test_forward(self):
        op = self._matmul((32, 128), (128, 10), (32, 10))
        assert flop_count(op) == 2 * 32 * 128 * 10

    def test_weight_gradient_layout(self):
        # dW: (B,K)^T x (B,N) -> (K,N); shared dim is B.
        op = self._matmul((32, 128), (32, 10), (128, 10))
        assert flop_count(op) == 2 * 32 * 128 * 10

    def test_input_gradient_layout(self):
        # dx: (B,N) x (K,N)^T -> (B,K); shared dim is N.
        op = self._matmul((32, 10), (128, 10), (32, 128))
        assert flop_count(op) == 2 * 32 * 128 * 10

    def test_inconsistent_shapes_raise(self):
        with pytest.raises(ShapeError):
            flop_count(self._matmul((3, 5), (7, 11), (2, 2)))


class TestOtherOps:
    def test_pooling_flops_positive(self):
        op = Operation(
            name="t/MaxPool", op_type="MaxPool",
            inputs=(TensorShape.of(2, 8, 8, 4),),
            outputs=(TensorShape.of(2, 4, 4, 4),),
            attrs={"kernel": (2, 2)},
        )
        assert flop_count(op) == 2 * 4 * 4 * 4 * 4  # out_elems * kh * kw

    def test_data_movement_is_zero_flops(self):
        op = Operation(
            name="t/Reshape", op_type="Reshape",
            inputs=(TensorShape.of(2, 8),), outputs=(TensorShape.of(16),),
        )
        assert flop_count(op) == 0

    def test_memory_bytes_is_io_sum(self):
        op = Operation(
            name="t/Relu", op_type="Relu",
            inputs=(TensorShape.of(10,),), outputs=(TensorShape.of(10,),),
        )
        assert memory_bytes(op) == 80

    def test_graph_flops_sums(self, tiny_graph):
        total = graph_flops(tiny_graph.operations)
        assert total == sum(flop_count(op) for op in tiny_graph)
        assert total > 0
