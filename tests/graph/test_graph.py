"""Tests for the OpGraph DAG container, including property-based checks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.graph import OpGraph
from repro.graph.ops import Device, Operation
from repro.graph.shapes import TensorShape

_SHAPE = TensorShape.of(1, 4, 4, 1)


def _identity(name, producers=()):
    return Operation(
        name=name, op_type="Identity",
        inputs=(_SHAPE,), outputs=(_SHAPE,), input_ops=tuple(producers),
    )


def _chain_graph(n: int) -> OpGraph:
    g = OpGraph(name="chain", batch_size=1)
    prev = None
    for i in range(n):
        g.add(_identity(f"op{i}", (prev,) if prev else ()))
        prev = f"op{i}"
    return g


class TestConstruction:
    def test_add_and_len(self):
        g = _chain_graph(3)
        assert len(g) == 3
        assert "op1" in g

    def test_duplicate_name_rejected(self):
        g = _chain_graph(1)
        with pytest.raises(GraphError):
            g.add(_identity("op0"))

    def test_unknown_producer_rejected(self):
        g = OpGraph(name="g", batch_size=1)
        with pytest.raises(GraphError):
            g.add(_identity("a", ("missing",)))

    def test_get_unknown_raises(self):
        with pytest.raises(GraphError):
            _chain_graph(1).get("nope")


class TestTopology:
    def test_topological_order_is_complete_and_valid(self):
        g = _chain_graph(5)
        order = g.topological_order()
        position = {op.name: i for i, op in enumerate(order)}
        assert len(order) == 5
        for op in g:
            for producer in op.input_ops:
                assert position[producer] < position[op.name]

    def test_diamond(self):
        g = OpGraph(name="diamond", batch_size=1)
        g.add(_identity("a"))
        g.add(_identity("b", ("a",)))
        g.add(_identity("c", ("a",)))
        g.add(_identity("d", ("b", "c")))
        order = [op.name for op in g.topological_order()]
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("d") == 3

    def test_validate_empty_graph_fails(self):
        with pytest.raises(GraphError):
            OpGraph(name="e", batch_size=1).validate()

    def test_validate_bad_batch_fails(self):
        g = _chain_graph(1)
        g.batch_size = 0
        with pytest.raises(GraphError):
            g.validate()

    def test_validate_negative_params_fails(self):
        g = _chain_graph(1)
        g.num_parameters = -1
        with pytest.raises(GraphError):
            g.validate()


class TestQueries:
    def test_op_type_counts(self):
        g = _chain_graph(4)
        assert g.op_type_counts() == {"Identity": 4}

    def test_ops_on_device(self, tiny_graph):
        gpu_ops = tiny_graph.ops_on(Device.GPU)
        cpu_ops = tiny_graph.ops_on(Device.CPU)
        assert len(gpu_ops) + len(cpu_ops) == len(tiny_graph)
        assert cpu_ops  # input pipeline present

    def test_ops_of_type(self, tiny_graph):
        convs = tiny_graph.ops_of_type("Conv2D")
        assert len(convs) == 2
        assert all(op.op_type == "Conv2D" for op in convs)

    def test_summary_mentions_params(self, tiny_graph):
        text = tiny_graph.summary()
        assert "tiny" in text and "Conv2D" in text


@given(st.integers(1, 40), st.randoms(use_true_random=False))
def test_random_dags_always_topologically_sortable(n, rng):
    """Any graph built producers-before-consumers is a DAG and sortable."""
    g = OpGraph(name="random", batch_size=1)
    names = []
    for i in range(n):
        k = rng.randint(0, min(3, len(names)))
        producers = rng.sample(names, k) if k else []
        name = f"n{i}"
        g.add(_identity(name, producers))
        names.append(name)
    order = g.topological_order()
    assert len(order) == n
    position = {op.name: i for i, op in enumerate(order)}
    for op in g:
        assert all(position[p] < position[op.name] for p in op.input_ops)
