"""Tests for the shared layer/tape building blocks."""

import pytest

from repro.graph.layers import (
    SUPPORTED_ACTIVATIONS,
    TapeEntry,
    TensorRef,
    VariableSpec,
    activation_grad_op_type,
    activation_op_type,
)
from repro.graph.shapes import TensorShape


class TestActivationMapping:
    def test_none_means_no_op(self):
        assert activation_op_type(None) is None

    @pytest.mark.parametrize("name,op_type", [
        ("relu", "Relu"), ("tanh", "Tanh"), ("gelu", "Gelu"),
    ])
    def test_forward_mapping(self, name, op_type):
        assert activation_op_type(name) == op_type

    @pytest.mark.parametrize("name,op_type", [
        ("relu", "ReluGrad"), ("gelu", "GeluGrad"), ("tanh", "Mul"),
    ])
    def test_backward_mapping(self, name, op_type):
        assert activation_grad_op_type(name) == op_type

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            activation_op_type("swish")

    def test_supported_list_consistent(self):
        for name in SUPPORTED_ACTIVATIONS:
            if name is not None:
                assert activation_op_type(name)


class TestTensorRef:
    def test_key(self):
        ref = TensorRef("op/a", TensorShape.of(2, 2), index=1)
        assert ref.key == ("op/a", 1)

    def test_default_index(self):
        assert TensorRef("x", TensorShape.of(1)).index == 0

    def test_hashable_and_frozen(self):
        ref = TensorRef("x", TensorShape.of(1))
        assert ref in {ref}
        with pytest.raises(Exception):
            ref.op_name = "y"


class TestVariableSpec:
    def test_num_parameters(self):
        var = VariableSpec("w", TensorShape.of(3, 3, 16, 32))
        assert var.num_parameters == 3 * 3 * 16 * 32


class TestTapeEntry:
    def test_defaults(self):
        ref = TensorRef("x", TensorShape.of(1))
        entry = TapeEntry(kind="reshape", inputs=(ref,), output=ref, scope="s")
        assert entry.variables == {}
        assert entry.intermediates == {}
        assert entry.attrs == {}
        assert entry.stop_gradient is False
