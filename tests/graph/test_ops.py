"""Tests for the op-type registry and Operation instances."""

import pytest

from repro.errors import UnknownOpError
from repro.graph.ops import (
    CPU_OP_TYPES,
    OP_REGISTRY,
    Device,
    OpCategory,
    OpDef,
    Operation,
    op_def,
    register_op,
)
from repro.graph.shapes import TensorShape


class TestRegistry:
    def test_core_training_ops_registered(self):
        for name in (
            "Conv2D", "Conv2DBackpropFilter", "Conv2DBackpropInput",
            "MaxPool", "MaxPoolGrad", "AvgPool", "AvgPoolGrad",
            "FusedBatchNormV3", "FusedBatchNormGradV3",
            "Relu", "ReluGrad", "BiasAdd", "BiasAddGrad",
            "AddV2", "AddN", "ConcatV2", "MatMul",
            "ApplyMomentum", "SparseToDense", "IteratorGetNext",
        ):
            assert name in OP_REGISTRY

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownOpError):
            op_def("Conv3D")

    def test_gradient_links_point_to_registered_forward_ops(self):
        for definition in OP_REGISTRY.values():
            if definition.gradient_of is not None:
                assert definition.gradient_of in OP_REGISTRY

    def test_cpu_op_types_match_registry_device(self):
        for name in CPU_OP_TYPES:
            assert OP_REGISTRY[name].device is Device.CPU
        assert "SparseToDense" in CPU_OP_TYPES
        assert "Conv2D" not in CPU_OP_TYPES

    def test_every_category_is_used(self):
        used = {d.category for d in OP_REGISTRY.values()}
        assert used == set(OpCategory)

    def test_register_is_idempotent_by_name(self):
        before = len(OP_REGISTRY)
        register_op(OP_REGISTRY["Conv2D"])
        assert len(OP_REGISTRY) == before


class TestOperation:
    def _op(self, **kwargs):
        defaults = dict(
            name="layer/Conv2D",
            op_type="Conv2D",
            inputs=(TensorShape.of(2, 8, 8, 3), TensorShape.of(3, 3, 3, 16)),
            outputs=(TensorShape.of(2, 8, 8, 16),),
            attrs={"kernel": (3, 3)},
        )
        defaults.update(kwargs)
        return Operation(**defaults)

    def test_input_bytes_sums_all_inputs(self):
        op = self._op()
        assert op.input_bytes == (2 * 8 * 8 * 3 + 3 * 3 * 3 * 16) * 4

    def test_output_bytes(self):
        assert self._op().output_bytes == 2 * 8 * 8 * 16 * 4

    def test_category_from_registry(self):
        assert self._op().category is OpCategory.CONV_COMPUTE

    def test_rejects_unknown_op_type(self):
        with pytest.raises(UnknownOpError):
            self._op(op_type="MadeUpOp")

    def test_default_device_is_gpu(self):
        assert self._op().device is Device.GPU

    def test_lists_are_normalised_to_tuples(self):
        op = self._op(inputs=[TensorShape.of(1, 2, 2, 1), TensorShape.of(1, 1, 1, 1)])
        assert isinstance(op.inputs, tuple)

    def test_str_contains_name_and_type(self):
        rendered = str(self._op())
        assert "layer/Conv2D" in rendered and "Conv2D" in rendered
