"""Tests for the recurrent (LSTM) graph builder and its autodiff."""

import pytest

from repro.errors import GraphError, ShapeError
from repro.graph.recurrent import RecurrentGraphBuilder
from repro.models.lstm import LSTM_PRESETS, build_lstm


def _builder():
    return RecurrentGraphBuilder(
        "rnn", batch_size=4, seq_len=8, vocab_size=50, num_classes=3
    )


class TestPrimitives:
    def test_multiply_binary(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        y = b.multiply(x, x)
        assert y.shape == x.shape

    def test_multiply_shape_mismatch(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        h = b.zero_state(8)
        with pytest.raises(ShapeError):
            b.multiply(x, h)

    def test_slice_features(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        y = b.slice_features(x, 4, 8)
        assert y.shape.dims == (4, 8, 8)

    def test_slice_out_of_range(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        with pytest.raises(ShapeError):
            b.slice_features(x, 10, 10)

    def test_time_slice(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        y = b.timestep_slice(x, 3)
        assert y.shape.dims == (4, 16)

    def test_time_slice_bounds(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        with pytest.raises(ShapeError):
            b.timestep_slice(x, 8)

    def test_concat_features_rank2(self):
        b = _builder()
        b.sequence_input()
        a = b.zero_state(8)
        c = b.zero_state(8)
        y = b.concat_features([a, c])
        assert y.shape.dims == (4, 16)

    def test_concat_features_mismatch(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        h = b.zero_state(8)
        with pytest.raises(ShapeError):
            b.concat_features([x, h])

    def test_stack_time(self):
        b = _builder()
        b.sequence_input()
        steps = [b.zero_state(8) for _ in range(5)]
        y = b.stack_timesteps(steps)
        assert y.shape.dims == (4, 5, 8)

    def test_standalone_activation(self):
        b = _builder()
        b.sequence_input()
        h = b.zero_state(8)
        y = b.activation(h, "sigmoid")
        assert y.shape == h.shape
        assert len(b.graph.ops_of_type("Sigmoid")) == 1

    def test_activation_none_rejected(self):
        b = _builder()
        b.sequence_input()
        h = b.zero_state(8)
        with pytest.raises(GraphError):
            b.activation(h, None)


class TestLstm:
    def test_cell_shapes(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        x_t = b.timestep_slice(x, 0)
        h, c = b.lstm_cell(x_t, b.zero_state(8), b.zero_state(8), 8, "cell")
        assert h.shape.dims == (4, 8)
        assert c.shape.dims == (4, 8)

    def test_layer_output_shape(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 16)
        y = b.lstm_layer(x, 8)
        assert y.shape.dims == (4, 8, 8)

    def test_weight_sharing_dedup(self):
        """Unrolled steps share one gate kernel: parameters must not scale
        with sequence length."""
        short = build_lstm("small", batch_size=4, seq_len=4, vocab_size=50)
        long = build_lstm("small", batch_size=4, seq_len=16, vocab_size=50)
        assert short.num_parameters == long.num_parameters
        assert short.num_variables == long.num_variables

    def test_ops_scale_with_sequence(self):
        short = build_lstm("small", batch_size=4, seq_len=4, vocab_size=50)
        long = build_lstm("small", batch_size=4, seq_len=16, vocab_size=50)
        assert len(long) > 2 * len(short)

    def test_full_model_backward_structure(self):
        g = build_lstm("small", batch_size=4, seq_len=4, vocab_size=50)
        counts = g.op_type_counts()
        assert counts["Sigmoid"] == 3 * 4  # 3 gates x 4 steps
        assert counts["SigmoidGrad"] == counts["Sigmoid"]
        assert counts["Tanh"] == 2 * 4  # candidate + state activation
        assert counts["Pad"] >= 4  # slice gradients
        g.validate()

    def test_every_variable_updated(self):
        g = build_lstm("medium", batch_size=4, seq_len=4, vocab_size=50)
        assert len(g.ops_of_type("ApplyMomentum")) == g.num_variables

    def test_presets(self):
        for preset in LSTM_PRESETS:
            g = build_lstm(preset, batch_size=4, seq_len=4, vocab_size=50)
            g.validate()

    def test_unknown_preset(self):
        from repro.errors import ModelZooError

        with pytest.raises(ModelZooError):
            build_lstm("xl")

    def test_simulates(self):
        from repro.sim import run_iterations

        g = build_lstm("small", batch_size=4, seq_len=4, vocab_size=50)
        profile = run_iterations(g, "T4", 10)
        assert profile.compute_us > 0
