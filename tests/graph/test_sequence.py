"""Tests for the sequence (Transformer) graph builder and its autodiff."""

import pytest

from repro.errors import ShapeError
from repro.graph.sequence import SequenceGraphBuilder
from repro.graph.shapes import TensorShape


def _builder(**kwargs):
    defaults = dict(name="seq", batch_size=4, seq_len=16, vocab_size=100,
                    num_classes=3)
    defaults.update(kwargs)
    return SequenceGraphBuilder(**defaults)


def _tiny_transformer(layers=1, d_model=32, heads=2):
    b = _builder()
    tokens = b.sequence_input()
    x = b.embedding(tokens, d_model)
    for i in range(layers):
        x = b.encoder_block(x, heads, scope=f"enc{i}")
    pooled = b.sequence_mean(b.layer_norm(x))
    return b.finalize(b.dense(pooled, 3, activation=None))


class TestLayers:
    def test_sequence_input_shapes(self):
        b = _builder()
        tokens = b.sequence_input()
        assert tokens.shape.dims == (4, 16)
        assert tokens.shape.dtype == "int64"

    def test_embedding(self):
        b = _builder()
        tokens = b.sequence_input()
        x = b.embedding(tokens, 32)
        assert x.shape.dims == (4, 16, 32)
        assert any(v.name.endswith("/table") for v in b.variables)
        table = next(v for v in b.variables if v.name.endswith("/table"))
        assert table.shape.dims == (100, 32)

    def test_layer_norm_preserves_shape_adds_params(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 32)
        y = b.layer_norm(x)
        assert y.shape == x.shape
        names = {v.name for v in b.variables}
        assert any(n.endswith("/gamma") for n in names)

    def test_dense_tokens(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 32)
        y = b.dense_tokens(x, 64, activation="gelu")
        assert y.shape.dims == (4, 16, 64)
        assert len(b.graph.ops_of_type("Gelu")) == 1

    def test_batch_matmul_requires_rank_3(self):
        b = _builder()
        tokens = b.sequence_input()
        with pytest.raises(ShapeError):
            b.batch_matmul(tokens, tokens, TensorShape.of(4, 16, 16))

    def test_attention_shapes(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 32)
        y = b.self_attention(x, num_heads=2)
        assert y.shape.dims == (4, 16, 32)
        # scores + context batched matmuls
        assert len(b.graph.ops_of_type("BatchMatMul")) == 2
        assert len(b.graph.ops_of_type("Softmax")) == 1

    def test_attention_head_divisibility(self):
        b = _builder()
        x = b.embedding(b.sequence_input(), 30)
        with pytest.raises(ShapeError):
            b.self_attention(x, num_heads=4)


class TestTrainingGraph:
    def test_builds_and_validates(self):
        g = _tiny_transformer()
        g.validate()
        assert g.num_parameters > 0
        assert g.num_variables > 10

    def test_backward_ops_present(self):
        g = _tiny_transformer()
        counts = g.op_type_counts()
        # forward 2 batched matmuls -> 4 gradient batched matmuls
        assert counts["BatchMatMul"] == 2 + 4
        assert counts["SoftmaxGrad"] == counts["Softmax"]  # attention softmax
        assert counts["LayerNormGrad"] == counts["LayerNorm"]
        assert counts["GeluGrad"] == counts["Gelu"]
        assert counts["Scatter"] == 1  # embedding-table gradient

    def test_every_variable_updated(self):
        g = _tiny_transformer()
        assert len(g.ops_of_type("ApplyMomentum")) == g.num_variables

    def test_parameter_count_matches_formula(self):
        d, layers, vocab, ffn = 32, 1, 100, 4
        g = _tiny_transformer(layers=layers, d_model=d)
        expected = vocab * d  # embedding
        per_block = (
            4 * (d * d + d)          # q/k/v/out projections (+bias)
            + 2 * (2 * d)            # two layer norms
            + (d * ffn * d + ffn * d)  # ffn up
            + (ffn * d * d + d)      # ffn down
        )
        final_ln = 2 * d
        head = d * 3 + 3
        assert g.num_parameters == expected + layers * per_block + final_ln + head

    def test_simulates_on_all_gpus(self):
        from repro.sim import run_iterations

        g = _tiny_transformer()
        for gpu in ("V100", "K80", "T4", "M60"):
            profile = run_iterations(g, gpu, 20)
            assert profile.compute_us > 0

    def test_serialization_round_trip(self, tmp_path):
        from repro.graph.serialization import load_graph, save_graph

        g = _tiny_transformer()
        save_graph(g, tmp_path / "t.json")
        restored = load_graph(tmp_path / "t.json")
        assert restored.op_type_counts() == g.op_type_counts()


class TestTransformerPresets:
    def test_all_presets_build(self):
        from repro.models.transformer import TRANSFORMER_PRESETS, build_transformer

        for preset in TRANSFORMER_PRESETS:
            g = build_transformer(preset, batch_size=4, seq_len=32)
            g.validate()

    def test_unknown_preset_rejected(self):
        from repro.errors import ModelZooError
        from repro.models.transformer import build_transformer

        with pytest.raises(ModelZooError):
            build_transformer("xxl")

    def test_preset_sizes_ordered(self):
        from repro.models.transformer import build_transformer

        params = [
            build_transformer(p, batch_size=4, seq_len=32).num_parameters
            for p in ("tiny", "mini", "small", "medium")
        ]
        assert params == sorted(params)
