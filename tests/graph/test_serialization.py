"""Tests for op-graph JSON (de)serialisation."""

import json

import pytest

from repro.errors import GraphError
from repro.graph.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.models import build_model


class TestRoundTrip:
    def test_tiny_graph_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "tiny.json"
        save_graph(tiny_graph, path)
        restored = load_graph(path)
        assert restored.name == tiny_graph.name
        assert restored.batch_size == tiny_graph.batch_size
        assert restored.num_parameters == tiny_graph.num_parameters
        assert restored.num_variables == tiny_graph.num_variables
        assert len(restored) == len(tiny_graph)
        for original, loaded in zip(tiny_graph.operations, restored.operations):
            assert original == loaded

    def test_zoo_model_round_trip(self, tmp_path):
        graph = build_model("inception_v1", batch_size=8)
        path = tmp_path / "incv1.json"
        save_graph(graph, path)
        restored = load_graph(path)
        assert restored.op_type_counts() == graph.op_type_counts()
        restored.validate()

    def test_attrs_tuples_preserved(self, tiny_graph, tmp_path):
        path = tmp_path / "g.json"
        save_graph(tiny_graph, path)
        restored = load_graph(path)
        conv = restored.ops_of_type("Conv2D")[0]
        assert conv.attrs["kernel"] == (3, 3)
        assert isinstance(conv.attrs["kernel"], tuple)

    def test_dtypes_preserved(self, tiny_graph, tmp_path):
        path = tmp_path / "g.json"
        save_graph(tiny_graph, path)
        restored = load_graph(path)
        iterator = restored.ops_of_type("IteratorGetNext")[0]
        assert iterator.outputs[1].dtype == "int64"

    def test_predictions_identical_after_round_trip(self, tiny_graph, tmp_path,
                                                    ceer_small):
        path = tmp_path / "g.json"
        save_graph(tiny_graph, path)
        restored = load_graph(path)
        from repro.workloads.dataset import IMAGENET_6400, TrainingJob

        job = TrainingJob(IMAGENET_6400, batch_size=tiny_graph.batch_size)
        a = ceer_small.predict_training(tiny_graph, "T4", 2, job)
        b = ceer_small.predict_training(restored, "T4", 2, job)
        assert a.total_us == b.total_us


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, tiny_graph):
        data = graph_to_dict(tiny_graph)
        data["version"] = 99
        with pytest.raises(GraphError):
            graph_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_unserialisable_attr_rejected(self, tiny_graph):
        from repro.graph.serialization import _attr_to_json

        with pytest.raises(GraphError):
            _attr_to_json(object())

    def test_document_is_plain_json(self, tiny_graph, tmp_path):
        path = tmp_path / "g.json"
        save_graph(tiny_graph, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-opgraph"
        assert isinstance(data["ops"], list)
