"""Unit and property tests for tensor shapes and size arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.graph.shapes import (
    DTYPE_BYTES,
    TensorShape,
    conv_output_hw,
    dtype_size,
    total_bytes,
)


class TestTensorShape:
    def test_basic_construction(self):
        s = TensorShape.of(32, 224, 224, 3)
        assert s.dims == (32, 224, 224, 3)
        assert s.dtype == "float32"

    def test_num_elements_and_bytes(self):
        s = TensorShape.of(2, 3, 4)
        assert s.num_elements == 24
        assert s.num_bytes == 96  # float32

    def test_scalar(self):
        s = TensorShape.scalar()
        assert s.rank == 0
        assert s.num_elements == 1
        assert s.num_bytes == 4

    def test_int64_bytes(self):
        s = TensorShape.of(10, dtype="int64")
        assert s.num_bytes == 80

    def test_nhwc_accessors(self):
        s = TensorShape.of(8, 28, 30, 64)
        assert (s.batch, s.height, s.width, s.channels) == (8, 28, 30, 64)

    def test_nhwc_accessor_requires_rank_4(self):
        with pytest.raises(ShapeError):
            TensorShape.of(8, 28).channels

    def test_with_batch(self):
        s = TensorShape.of(8, 28, 28, 64)
        assert s.with_batch(16).dims == (16, 28, 28, 64)

    def test_with_batch_scalar_noop(self):
        s = TensorShape.scalar()
        assert s.with_batch(7) is s

    def test_rejects_non_positive_dims(self):
        with pytest.raises(ShapeError):
            TensorShape.of(0, 3)
        with pytest.raises(ShapeError):
            TensorShape.of(-1)

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ShapeError):
            TensorShape.of(3, dtype="float128")

    def test_immutability(self):
        s = TensorShape.of(1, 2)
        with pytest.raises(Exception):
            s.dims = (3,)

    def test_str_rendering(self):
        assert str(TensorShape.of(1, 2)) == "[1, 2]"
        assert "int64" in str(TensorShape.of(1, dtype="int64"))

    @given(st.lists(st.integers(1, 100), min_size=0, max_size=5))
    def test_num_elements_is_product(self, dims):
        s = TensorShape(tuple(dims))
        assert s.num_elements == math.prod(dims) if dims else s.num_elements == 1

    @given(
        st.lists(st.integers(1, 50), min_size=1, max_size=4),
        st.sampled_from(sorted(DTYPE_BYTES)),
    )
    def test_bytes_scale_with_dtype(self, dims, dtype):
        s = TensorShape(tuple(dims), dtype)
        assert s.num_bytes == s.num_elements * dtype_size(dtype)


class TestConvOutputHw:
    def test_same_padding_stride_1(self):
        assert conv_output_hw(224, 224, 3, 3, 1, 1, "SAME") == (224, 224)

    def test_same_padding_stride_2(self):
        assert conv_output_hw(224, 224, 3, 3, 2, 2, "SAME") == (112, 112)
        assert conv_output_hw(7, 7, 3, 3, 2, 2, "SAME") == (4, 4)

    def test_valid_padding(self):
        assert conv_output_hw(224, 224, 3, 3, 1, 1, "VALID") == (222, 222)
        assert conv_output_hw(227, 227, 11, 11, 4, 4, "VALID") == (55, 55)

    def test_valid_window_must_fit(self):
        with pytest.raises(ShapeError):
            conv_output_hw(2, 2, 3, 3, 1, 1, "VALID")

    def test_rejects_bad_padding(self):
        with pytest.raises(ShapeError):
            conv_output_hw(8, 8, 3, 3, 1, 1, "REFLECT")

    def test_rejects_bad_strides(self):
        with pytest.raises(ShapeError):
            conv_output_hw(8, 8, 3, 3, 0, 1, "SAME")

    def test_padding_case_insensitive(self):
        assert conv_output_hw(8, 8, 2, 2, 2, 2, "same") == (4, 4)

    @given(
        st.integers(1, 64), st.integers(1, 64),
        st.integers(1, 7), st.integers(1, 7),
        st.integers(1, 4), st.integers(1, 4),
    )
    def test_same_output_matches_ceil_division(self, h, w, kh, kw, sh, sw):
        oh, ow = conv_output_hw(h, w, kh, kw, sh, sw, "SAME")
        assert oh == -(-h // sh)
        assert ow == -(-w // sw)

    @given(
        st.integers(8, 64), st.integers(1, 7), st.integers(1, 4),
    )
    def test_valid_never_larger_than_same(self, size, k, stride):
        same = conv_output_hw(size, size, k, k, stride, stride, "SAME")
        valid = conv_output_hw(size, size, k, k, stride, stride, "VALID")
        assert valid[0] <= same[0] and valid[1] <= same[1]


def test_total_bytes_sums():
    shapes = [TensorShape.of(2, 2), TensorShape.of(3)]
    assert total_bytes(shapes) == 16 + 12
