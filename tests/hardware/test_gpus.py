"""Tests for the GPU spec database."""

import pytest

from repro.errors import HardwareError
from repro.hardware.gpus import (
    FAMILY_TO_GPU,
    GPU_KEYS,
    GPU_SPECS,
    HOST_CPU,
    gpu_spec,
)


class TestSpecs:
    def test_four_gpu_models(self):
        assert set(GPU_SPECS) == {"V100", "K80", "T4", "M60"}
        assert set(GPU_KEYS) == set(GPU_SPECS)

    def test_paper_hardware_facts(self):
        """Section II's hardware description is reproduced verbatim."""
        v100 = GPU_SPECS["V100"]
        assert v100.cuda_cores == 5120 and v100.tensor_cores == 640
        assert v100.memory_gb == 16 and v100.family == "P3"
        k80 = GPU_SPECS["K80"]
        assert k80.cuda_cores == 2496 and k80.memory_gb == 12
        t4 = GPU_SPECS["T4"]
        assert t4.cuda_cores == 2560 and t4.memory_gb == 16
        m60 = GPU_SPECS["M60"]
        assert m60.cuda_cores == 2048 and m60.memory_gb == 8

    def test_family_mapping_bijective(self):
        assert FAMILY_TO_GPU == {"P3": "V100", "P2": "K80", "G4": "T4", "G3": "M60"}

    def test_lookup_by_key_and_family(self):
        assert gpu_spec("V100") is gpu_spec("P3")
        assert gpu_spec("G4").key == "T4"

    def test_unknown_lookup_raises(self):
        with pytest.raises(HardwareError):
            gpu_spec("A100")

    def test_v100_dominates_raw_specs(self):
        v100 = GPU_SPECS["V100"]
        for key, spec in GPU_SPECS.items():
            if key != "V100":
                assert v100.peak_gflops > spec.peak_gflops
                assert v100.memory_bandwidth_gbps > spec.memory_bandwidth_gbps

    def test_host_cpu_defaults(self):
        assert HOST_CPU.overhead_us > 0
        assert HOST_CPU.effective_bandwidth_gbps > 0


class TestRuntimeRegistration:
    """Spec-only GPUs registered at runtime resolve like built-ins."""

    @staticmethod
    def _spec(key="ZGPU", family="GZ"):
        from repro.hardware.gpus import GpuSpec

        return GpuSpec(
            key=key, family=family, marketing_name="Runtime Test GPU",
            cuda_cores=4096, tensor_cores=0, memory_gb=16,
            peak_gflops=9000.0, memory_bandwidth_gbps=450.0,
            launch_overhead_us=4.0, saturation_elements=5.0e5,
            comm_base_us=5000.0, comm_us_per_mparam=400.0,
        )

    @pytest.fixture
    def registered(self):
        from repro.hardware.gpus import register_gpu_spec, unregister_gpu_spec

        spec = register_gpu_spec(self._spec())
        yield spec
        unregister_gpu_spec(spec.key)

    def test_resolves_by_key_and_family(self, registered):
        from repro.hardware.gpus import is_runtime_gpu, runtime_gpu_keys

        assert gpu_spec("ZGPU") is registered
        assert gpu_spec("GZ") is registered
        assert is_runtime_gpu("ZGPU")
        assert "ZGPU" in runtime_gpu_keys()

    def test_builtin_keys_cannot_be_shadowed(self):
        from repro.hardware.gpus import register_gpu_spec

        with pytest.raises(HardwareError):
            register_gpu_spec(self._spec(key="V100"))
        with pytest.raises(HardwareError):
            register_gpu_spec(self._spec(key="P3"))

    def test_reregistering_replaces(self, registered):
        from repro.hardware.gpus import register_gpu_spec, unregister_gpu_spec

        import dataclasses

        faster = dataclasses.replace(registered, peak_gflops=20000.0)
        register_gpu_spec(faster)
        try:
            assert gpu_spec("ZGPU").peak_gflops == 20000.0
        finally:
            unregister_gpu_spec("ZGPU")

    def test_unregister_is_idempotent(self):
        from repro.hardware.gpus import unregister_gpu_spec

        unregister_gpu_spec("never-registered")  # must not raise

    def test_unknown_key_error_lists_runtime_gpus(self, registered):
        with pytest.raises(HardwareError, match="ZGPU"):
            gpu_spec("no-such-gpu")

    def test_unregistered_key_unresolvable(self):
        with pytest.raises(HardwareError):
            gpu_spec("ZGPU")
