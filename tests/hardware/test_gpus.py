"""Tests for the GPU spec database."""

import pytest

from repro.errors import HardwareError
from repro.hardware.gpus import (
    FAMILY_TO_GPU,
    GPU_KEYS,
    GPU_SPECS,
    HOST_CPU,
    gpu_spec,
)


class TestSpecs:
    def test_four_gpu_models(self):
        assert set(GPU_SPECS) == {"V100", "K80", "T4", "M60"}
        assert set(GPU_KEYS) == set(GPU_SPECS)

    def test_paper_hardware_facts(self):
        """Section II's hardware description is reproduced verbatim."""
        v100 = GPU_SPECS["V100"]
        assert v100.cuda_cores == 5120 and v100.tensor_cores == 640
        assert v100.memory_gb == 16 and v100.family == "P3"
        k80 = GPU_SPECS["K80"]
        assert k80.cuda_cores == 2496 and k80.memory_gb == 12
        t4 = GPU_SPECS["T4"]
        assert t4.cuda_cores == 2560 and t4.memory_gb == 16
        m60 = GPU_SPECS["M60"]
        assert m60.cuda_cores == 2048 and m60.memory_gb == 8

    def test_family_mapping_bijective(self):
        assert FAMILY_TO_GPU == {"P3": "V100", "P2": "K80", "G4": "T4", "G3": "M60"}

    def test_lookup_by_key_and_family(self):
        assert gpu_spec("V100") is gpu_spec("P3")
        assert gpu_spec("G4").key == "T4"

    def test_unknown_lookup_raises(self):
        with pytest.raises(HardwareError):
            gpu_spec("A100")

    def test_v100_dominates_raw_specs(self):
        v100 = GPU_SPECS["V100"]
        for key, spec in GPU_SPECS.items():
            if key != "V100":
                assert v100.peak_gflops > spec.peak_gflops
                assert v100.memory_bandwidth_gbps > spec.memory_bandwidth_gbps

    def test_host_cpu_defaults(self):
        assert HOST_CPU.overhead_us > 0
        assert HOST_CPU.effective_bandwidth_gbps > 0
