"""Tests for the ground-truth kernel-time law."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.hardware.calibration import efficiency, op_tweak
from repro.hardware.gpus import GPU_SPECS
from repro.hardware.kernel_model import (
    base_time_us,
    gpu_base_time_us,
    host_base_time_us,
    instance_factor,
    sample_op_times_us,
    utilization,
)
from repro.graph.ops import OpCategory


def _relu(elements=1_000_000, name="x/Relu"):
    shape = TensorShape.of(elements)
    return Operation(name=name, op_type="Relu", inputs=(shape,), outputs=(shape,))


def _conv(hw=32, ic=16, oc=32, name="x/Conv2D"):
    x = TensorShape.of(4, hw, hw, ic)
    f = TensorShape.of(3, 3, ic, oc)
    y = TensorShape.of(4, hw, hw, oc)
    return Operation(
        name=name, op_type="Conv2D", inputs=(x, f), outputs=(y,),
        attrs={"kernel": (3, 3)},
    )


def _host_op(name="in/SparseToDense"):
    s = TensorShape.of(32, dtype="int64")
    return Operation(name=name, op_type="SparseToDense", inputs=(s,), outputs=(s,))


class TestBaseTime:
    def test_positive_and_above_launch_overhead(self):
        for key, spec in GPU_SPECS.items():
            t = gpu_base_time_us(_relu(), spec)
            assert t > spec.launch_overhead_us

    def test_monotone_in_input_size(self):
        spec = GPU_SPECS["V100"]
        small = gpu_base_time_us(_relu(10_000), spec)
        large = gpu_base_time_us(_relu(10_000_000), spec)
        assert large > small

    def test_v100_fastest_on_large_work(self):
        op = _conv(hw=64, ic=64, oc=64)
        times = {k: gpu_base_time_us(op, s) for k, s in GPU_SPECS.items()}
        assert min(times, key=times.get) == "V100"
        assert max(times, key=times.get) == "K80"

    def test_dispatch_host_vs_gpu(self):
        assert base_time_us(_host_op(), "V100") == base_time_us(_host_op(), "K80")
        assert base_time_us(_relu(), "V100") != base_time_us(_relu(), "K80")

    def test_host_time_has_overhead_floor(self):
        from repro.hardware.gpus import HOST_CPU

        assert host_base_time_us(_host_op()) >= HOST_CPU.overhead_us

    def test_quadratic_ops_superlinear(self):
        """Conv2DBackpropFilter time grows faster than linearly in input
        size (the paper's quadratic-fit finding, Section IV-B)."""
        def bpf(hw):
            x = TensorShape.of(32, hw, hw, 64)
            dy = TensorShape.of(32, hw, hw, 64)
            f = TensorShape.of(3, 3, 64, 64)
            return Operation(
                name=f"l{hw}/bpf", op_type="Conv2DBackpropFilter",
                inputs=(x, dy, f), outputs=(f,), attrs={"kernel": (3, 3)},
            )
        spec = GPU_SPECS["K80"]
        t1 = gpu_base_time_us(bpf(28), spec)
        t4x = gpu_base_time_us(bpf(56), spec)  # 4x the input size
        assert t4x > 4.05 * t1

    def test_family_alias_accepted(self):
        assert base_time_us(_relu(), "P3") == base_time_us(_relu(), "V100")


class TestUtilization:
    def test_in_unit_interval(self):
        for spec in GPU_SPECS.values():
            u = utilization(_relu(100), spec)
            assert 0 < u < 1

    def test_saturates_for_large_work(self):
        assert utilization(_relu(500_000_000), GPU_SPECS["V100"]) > 0.99

    def test_wide_chip_needs_more_parallelism(self):
        op = _relu(500_000)
        assert utilization(op, GPU_SPECS["V100"]) < utilization(op, GPU_SPECS["T4"])

    def test_reduction_ops_use_input_parallelism(self):
        """Ops with tiny outputs but big inputs (BiasAddGrad) must not be
        treated as latency-bound."""
        big_in = TensorShape.of(32, 56, 56, 64)
        tiny_out = TensorShape.of(64)
        op = Operation(
            name="g/BiasAddGrad", op_type="BiasAddGrad",
            inputs=(big_in,), outputs=(tiny_out,),
        )
        assert utilization(op, GPU_SPECS["V100"]) > 0.8


class TestInstanceFactor:
    def test_stable_per_instance(self):
        op = _relu()
        assert instance_factor(op, "V100") == instance_factor(op, "V100")

    def test_bounded(self):
        for i in range(50):
            f = instance_factor(_relu(name=f"op{i}/Relu"), "T4")
            assert 0.9 <= f <= 1.1

    def test_varies_across_instances(self):
        values = {instance_factor(_relu(name=f"op{i}/Relu"), "T4") for i in range(20)}
        assert len(values) > 10


class TestSampling:
    def test_deterministic_given_context(self):
        a = sample_op_times_us(_relu(), "V100", 100, "ctx")
        b = sample_op_times_us(_relu(), "V100", 100, "ctx")
        np.testing.assert_array_equal(a, b)

    def test_context_changes_samples(self):
        a = sample_op_times_us(_relu(), "V100", 100, "a")
        b = sample_op_times_us(_relu(), "V100", 100, "b")
        assert not np.array_equal(a, b)

    def test_samples_positive(self):
        assert (sample_op_times_us(_relu(), "K80", 1000) > 0).all()

    def test_heavy_op_low_relative_spread(self):
        samples = sample_op_times_us(_conv(hw=64, ic=64, oc=64), "K80", 2000)
        assert samples.std() / samples.mean() < 0.1

    def test_host_op_high_relative_spread(self):
        samples = sample_op_times_us(_host_op(), "K80", 2000)
        assert samples.std() / samples.mean() > 0.3


class TestCalibrationTables:
    def test_every_gpu_category_pair_present(self):
        for key in GPU_SPECS:
            for category in OpCategory:
                if category is OpCategory.HOST:
                    continue
                c, m = efficiency(key, category)
                assert 0 < c < 1 and 0 < m < 1

    def test_host_category_rejected(self):
        with pytest.raises(HardwareError):
            efficiency("V100", OpCategory.HOST)

    def test_op_tweak_default_is_identity(self):
        assert op_tweak("Conv2D", "M60") == 1.0

    def test_op_tweak_wildcard(self):
        assert op_tweak("SparseSoftmaxCrossEntropyWithLogits", "M60") == 1.5

    def test_op_tweak_specific_overrides_wildcard(self):
        assert op_tweak("LRN", "V100") != op_tweak("LRN", "K80")


@settings(max_examples=25)
@given(st.integers(1_000, 50_000_000))
def test_base_time_monotone_in_size_property(elements):
    spec = GPU_SPECS["T4"]
    t = gpu_base_time_us(_relu(elements), spec)
    t2 = gpu_base_time_us(_relu(elements * 2), spec)
    assert t2 > t
