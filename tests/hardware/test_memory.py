"""Tests for the GPU memory-footprint model."""

import pytest

from repro.hardware.gpus import GPU_SPECS
from repro.hardware.memory import (
    PARAMETER_COPIES,
    MemoryEstimate,
    estimate_memory,
    max_batch_size,
)
from repro.models import build_model


class TestEstimate:
    def test_components_positive(self, tiny_graph):
        estimate = estimate_memory(tiny_graph)
        assert estimate.parameter_bytes == tiny_graph.num_parameters * 4
        assert estimate.activation_bytes > 0
        assert estimate.workspace_bytes > 0
        assert estimate.total_bytes > estimate.reserve_bytes

    def test_total_decomposition(self, tiny_graph):
        e = estimate_memory(tiny_graph)
        assert e.total_bytes == (
            PARAMETER_COPIES * e.parameter_bytes
            + e.activation_bytes + e.workspace_bytes + e.reserve_bytes
        )

    def test_backward_ops_excluded_from_activations(self):
        """Gradient outputs are transient and must not count as retained
        activations; the estimate comes from forward ops only."""
        graph = build_model("inception_v1", batch_size=8)
        e = estimate_memory(graph)
        forward_only = sum(
            op.output_bytes for op in graph
            if op.device.value == "GPU"
            and not op.name.startswith(("gradients/", "train/"))
        )
        assert e.activation_bytes == forward_only

    def test_scales_with_batch(self):
        small = estimate_memory(build_model("resnet_50", batch_size=8))
        large = estimate_memory(build_model("resnet_50", batch_size=32))
        assert large.activation_bytes > 3 * small.activation_bytes
        assert large.parameter_bytes == small.parameter_bytes

    def test_realistic_magnitudes(self):
        """Well-known footprints: VGG-19 at batch 32 is several GB;
        AlexNet is small."""
        vgg = estimate_memory(build_model("vgg_19", batch_size=32))
        alex = estimate_memory(build_model("alexnet", batch_size=32))
        assert 5.0 < vgg.total_gb < 14.0
        assert alex.total_gb < 3.0

    def test_render(self, tiny_graph):
        text = estimate_memory(tiny_graph).render()
        assert "GB" in text and "activations" in text


class TestFits:
    def test_small_model_fits_everywhere(self):
        e = estimate_memory(build_model("inception_v1", batch_size=32))
        for gpu in GPU_SPECS:
            assert e.fits(gpu)

    def test_big_model_exceeds_smallest_gpu(self):
        e = estimate_memory(build_model("inception_resnet_v2", batch_size=32))
        assert e.fits("V100") and e.fits("T4")  # 16 GB
        assert not e.fits("M60")  # 8 GB

    def test_accepts_spec_object(self, tiny_graph):
        e = estimate_memory(tiny_graph)
        assert e.fits(GPU_SPECS["V100"])


class TestMaxBatchSize:
    def test_monotone_with_memory(self):
        build = lambda bs: build_model("vgg_19", batch_size=bs)
        assert max_batch_size(build, "M60") <= max_batch_size(build, "V100")

    def test_zero_when_nothing_fits(self):
        tiny_gpu = MemoryEstimate(
            model="x", batch_size=8, parameter_bytes=10**10,
            activation_bytes=0, workspace_bytes=0, reserve_bytes=0,
        )
        assert not tiny_gpu.fits("M60")
        build = lambda bs: build_model("inception_resnet_v2", batch_size=bs)
        assert max_batch_size(build, "M60", candidates=(64, 128)) == 0


class TestRecommenderIntegration:
    def test_memory_check_excludes_oom_gpus(self, ceer_small):
        from repro.core.recommend import Recommender
        from repro.workloads.dataset import IMAGENET_6400, TrainingJob

        job = TrainingJob(IMAGENET_6400, batch_size=32)
        unchecked = Recommender(ceer_small).sweep("inception_resnet_v2", job)
        checked = Recommender(ceer_small, check_memory=True).sweep(
            "inception_resnet_v2", job
        )
        assert {p.gpu_key for p in unchecked} == {"V100", "K80", "T4", "M60"}
        assert {p.gpu_key for p in checked} == {"V100", "T4"}

    def test_memory_check_noop_for_small_model(self, ceer_small):
        from repro.core.recommend import Recommender
        from repro.workloads.dataset import IMAGENET_6400, TrainingJob

        job = TrainingJob(IMAGENET_6400, batch_size=32)
        checked = Recommender(ceer_small, check_memory=True).sweep(
            "inception_v1", job
        )
        assert len(checked) == 16
