"""Tests for the seeded noise models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ops import OP_REGISTRY
from repro.hardware.noise import (
    all_known_sigmas,
    mean_and_percentiles,
    noise_sigma,
    rng_for,
    sample_lognormal_times_us,
)


class TestSigmas:
    def test_heavy_kernels_low_sigma(self):
        for op_type in ("Conv2D", "MaxPoolGrad", "FusedBatchNormGradV3"):
            assert noise_sigma(op_type) < 0.1

    def test_light_and_host_high_sigma(self):
        assert noise_sigma("Reshape") > 0.2
        assert noise_sigma("SparseToDense") >= 0.4

    def test_every_registered_op_has_a_sigma(self):
        sigmas = all_known_sigmas()
        assert set(sigmas) == set(OP_REGISTRY)
        assert all(0 < s < 1 for s in sigmas.values())


class TestRng:
    def test_same_keys_same_stream(self):
        a = rng_for("a", 1).random(5)
        b = rng_for("a", 1).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_different_stream(self):
        assert not np.array_equal(rng_for("a").random(5), rng_for("b").random(5))

    def test_key_order_matters(self):
        assert not np.array_equal(
            rng_for("a", "b").random(3), rng_for("b", "a").random(3)
        )


class TestSampling:
    def test_median_tracks_base(self):
        samples = sample_lognormal_times_us(1000.0, 0.05, 20_000, rng_for("t"))
        assert abs(np.median(samples) - 1000.0) / 1000.0 < 0.02

    def test_requires_positive_n(self):
        with pytest.raises(ValueError):
            sample_lognormal_times_us(10.0, 0.1, 0, rng_for("t"))

    def test_jitter_floor_keeps_zero_base_positive(self):
        samples = sample_lognormal_times_us(0.0, 0.1, 100, rng_for("t"))
        assert (samples >= 0).all() and samples.max() <= 0.2

    def test_analytic_moments_match_empirical(self):
        base, sigma = 500.0, 0.2
        mean, std = mean_and_percentiles(base, sigma)
        samples = sample_lognormal_times_us(base, sigma, 200_000, rng_for("m"))
        assert abs(samples.mean() - mean) / mean < 0.01
        assert abs(samples.std() - std) / std < 0.05

    @settings(max_examples=20)
    @given(st.floats(1.0, 1e6), st.floats(0.01, 0.5))
    def test_normalized_std_close_to_sigma(self, base, sigma):
        samples = sample_lognormal_times_us(base, sigma, 5000, rng_for(base, sigma))
        observed = samples.std() / samples.mean()
        # For small sigma, lognormal nstd ~= sigma (plus the tiny jitter).
        assert observed < sigma + 0.25
