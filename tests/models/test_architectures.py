"""Structural checks on individual architectures (paper, Section III).

These lock in the architecture facts the paper's analysis leans on — e.g.
that AlexNet/ResNet have few pooling ops while Inception/VGG have many
(the Fig. 9 discussion), and the layer counts that define each variant.
"""

import pytest

from repro.models import build_model
from repro.models.resnet import RESNET_STAGES
from repro.models.vgg import VGG_CONFIGS


def _counts(name):
    return build_model(name, batch_size=8).op_type_counts()


class TestAlexNet:
    def test_five_convs_three_dense(self):
        c = _counts("alexnet")
        assert c["Conv2D"] == 5
        assert c["MatMul"] >= 3  # 3 forward + gradient matmuls

    def test_lrn_layers(self):
        c = _counts("alexnet")
        assert c["LRN"] == 2 and c["LRNGrad"] == 2

    def test_few_pooling_ops(self):
        c = _counts("alexnet")
        assert c["MaxPool"] == 3
        assert "AvgPool" not in c

    def test_input_geometry(self):
        g = build_model("alexnet", batch_size=8)
        conv1 = g.ops_of_type("Conv2D")[0]
        assert conv1.inputs[0].dims == (8, 227, 227, 3)
        assert conv1.outputs[0].dims == (8, 55, 55, 96)


class TestVgg:
    @pytest.mark.parametrize("depth", [11, 16, 19])
    def test_conv_count_matches_depth(self, depth):
        convs = sum(1 for item in VGG_CONFIGS[depth] if item != "M")
        c = _counts(f"vgg_{depth}")
        assert c["Conv2D"] == convs
        assert convs + 3 == depth  # depth counts conv + fc layers

    def test_five_pool_blocks(self):
        assert _counts("vgg_19")["MaxPool"] == 5

    def test_no_batch_norm(self):
        assert "FusedBatchNormV3" not in _counts("vgg_19")


class TestResNet:
    @pytest.mark.parametrize("depth", [50, 101, 152, 200])
    def test_conv_count(self, depth):
        units = sum(RESNET_STAGES[depth])
        projections = 4  # one per stage
        expected = 1 + 3 * units + projections  # stem + bottlenecks
        assert _counts(f"resnet_{depth}")["Conv2D"] == expected

    def test_residual_adds(self):
        units = sum(RESNET_STAGES[101])
        assert _counts("resnet_101")["AddV2"] == units

    def test_single_max_pool(self):
        c = _counts("resnet_101")
        assert c["MaxPool"] == 1  # stem only — pooling-light (Fig. 9)

    def test_batch_normalised(self):
        c = _counts("resnet_50")
        assert c["FusedBatchNormV3"] == c["Conv2D"]


class TestInception:
    def test_v1_nine_modules(self):
        c = _counts("inception_v1")
        # 9 modules x 1 concat each
        assert c["ConcatV2"] == 9
        assert c["LRN"] == 2

    def test_v1_pooling_rich(self):
        c = _counts("inception_v1")
        # 9 in-module pools + stem/inter-stage pools
        assert c["MaxPool"] >= 12

    def test_v3_module_structure(self):
        c = _counts("inception_v3")
        # 3xA + 4xB + 2xC modules have AvgPool branches
        assert c["AvgPool"] == 9
        assert c["ConcatV2"] == 11  # 9 modules + 2 reductions

    def test_v3_no_bias_with_bn(self):
        c = _counts("inception_v3")
        assert c["FusedBatchNormV3"] == c["Conv2D"]
        # only the final dense layer carries a bias
        assert c.get("BiasAdd", 0) == 1

    def test_v4_module_counts(self):
        c = _counts("inception_v4")
        # 4xA + 7xB + 3xC avg-pool branches
        assert c["AvgPool"] == 14

    def test_inception_resnet_blocks(self):
        c = _counts("inception_resnet_v2")
        # 10 + 20 + 10 residual blocks, each ending in AddV2
        assert c["AddV2"] == 40
        # residual scaling Mul per block (plus dropout & their gradients)
        assert c["Mul"] >= 40

    def test_inception_input_is_299(self):
        g = build_model("inception_v3", batch_size=8)
        first_conv = g.ops_of_type("Conv2D")[0]
        assert first_conv.inputs[0].dims == (8, 299, 299, 3)
        assert first_conv.outputs[0].dims == (8, 149, 149, 32)

    def test_v3_final_grid_is_8x8x2048(self):
        g = build_model("inception_v3", batch_size=8)
        mean_ops = [op for op in g.ops_of_type("Mean") if op.inputs[0].rank == 4]
        gap = mean_ops[0]
        assert gap.inputs[0].dims == (8, 8, 8, 2048)
