"""Tests for the model zoo registry and the train/test split."""

import pytest

from repro.errors import ModelZooError
from repro.models import (
    MODEL_BUILDERS,
    TEST_MODELS,
    TRAIN_MODELS,
    build_model,
    model_names,
)

#: Published parameter counts (millions) with a tolerance: our graphs should
#: land close to the canonical figures for each architecture.
EXPECTED_MPARAMS = {
    "alexnet": (58, 66),
    "vgg_11": (129, 137),
    "vgg_16": (134, 142),
    "vgg_19": (139, 148),
    "inception_v1": (5.5, 8.5),
    "inception_v3": (21, 27),
    "inception_v4": (39, 47),
    "inception_resnet_v2": (50, 60),
    "resnet_50": (23, 28),
    "resnet_101": (41, 48),
    "resnet_152": (56, 64),
    "resnet_200": (60, 70),
}


class TestRegistry:
    def test_twelve_models(self):
        assert len(MODEL_BUILDERS) == 12
        assert set(model_names()) == set(MODEL_BUILDERS)

    def test_paper_train_test_split(self):
        assert set(TEST_MODELS) == {
            "inception_v3", "alexnet", "resnet_101", "vgg_19",
        }
        assert len(TRAIN_MODELS) == 8
        assert not set(TRAIN_MODELS) & set(TEST_MODELS)

    def test_unknown_model_raises(self):
        with pytest.raises(ModelZooError):
            build_model("lenet")

    def test_build_is_cached(self):
        a = build_model("inception_v1")
        b = build_model("inception_v1")
        assert a is b

    def test_distinct_batch_sizes_not_conflated(self):
        a = build_model("inception_v1", batch_size=8)
        b = build_model("inception_v1", batch_size=16)
        assert a is not b
        assert a.batch_size == 8 and b.batch_size == 16


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
class TestEveryModel:
    def test_builds_and_validates(self, name):
        graph = build_model(name, batch_size=8)
        graph.validate()
        assert len(graph) > 50

    def test_parameter_count_in_published_range(self, name):
        graph = build_model(name, batch_size=8)
        low, high = EXPECTED_MPARAMS[name]
        assert low <= graph.num_parameters / 1e6 <= high, (
            f"{name}: {graph.num_parameters / 1e6:.2f}M params outside "
            f"[{low}, {high}]M"
        )

    def test_batch_size_propagates(self, name):
        graph = build_model(name, batch_size=8)
        assert graph.batch_size == 8

    def test_has_training_structure(self, name):
        graph = build_model(name, batch_size=8)
        counts = graph.op_type_counts()
        assert counts.get("Conv2D", 0) + counts.get("MatMul", 0) > 0
        assert counts.get("Conv2DBackpropFilter", 0) > 0
        assert counts.get("ApplyMomentum", 0) == graph.num_variables
        assert counts.get("SparseSoftmaxCrossEntropyWithLogits") == 1
        assert counts.get("IteratorGetNext") == 1

    def test_num_parameters_scale_invariant_in_batch(self, name):
        small = build_model(name, batch_size=8)
        large = build_model(name, batch_size=32)
        assert small.num_parameters == large.num_parameters
