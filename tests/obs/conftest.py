"""Observability test isolation: never leak tracer/registry state."""

import pytest

from repro.obs.metrics import set_default_registry
from repro.obs.spans import disable_tracing


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Guarantee tracing is off and the default registry is fresh after
    each test, even when a test enables tracing and then fails."""
    previous = set_default_registry(None)
    yield
    disable_tracing()
    set_default_registry(previous)
