"""Tests for repro.obs.export: trace-event and metrics JSON schemas."""

import json
import threading

from repro.obs.export import (
    METRICS_FORMAT,
    METRICS_SCHEMA_VERSION,
    metrics_to_json,
    trace_to_chrome_json,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer


def _x_events(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "X"]


class TestChromeTraceSchema:
    def test_envelope_and_metadata(self):
        doc = trace_to_chrome_json(Tracer())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["format"] == "chrome-trace-event"
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metadata and metadata[0]["args"]["name"] == "repro"

    def test_complete_events_carry_required_fields(self):
        tracer = Tracer()
        with tracer.span("engine.compile", graph="alexnet", ops=21):
            pass
        (event,) = _x_events(trace_to_chrome_json(tracer))
        assert event["name"] == "engine.compile"
        assert event["cat"] == "engine"  # first dotted component
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float) and event["ts"] >= 0.0
        assert isinstance(event["dur"], float) and event["dur"] >= 0.0
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        assert event["args"]["graph"] == "alexnet"
        assert event["args"]["ops"] == 21

    def test_nesting_exported_with_depth_and_containment(self):
        tracer = Tracer()
        with tracer.span("cli.figures"):
            with tracer.span("fit.ceer"):
                with tracer.span("fit.compute_models"):
                    pass
        events = {e["name"]: e for e in _x_events(trace_to_chrome_json(tracer))}
        assert events["cli.figures"]["args"]["depth"] == 0
        assert events["fit.ceer"]["args"]["depth"] == 1
        assert events["fit.compute_models"]["args"]["depth"] == 2
        outer, inner = events["cli.figures"], events["fit.compute_models"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_thread_interleaving_gets_distinct_tids(self):
        tracer = Tracer()

        def worker():
            with tracer.span("background.work"):
                pass

        with tracer.span("main.work"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        events = {e["name"]: e for e in _x_events(trace_to_chrome_json(tracer))}
        assert events["main.work"]["tid"] == 0  # main thread aliases to 0
        assert events["background.work"]["tid"] != 0

    def test_round_trip_through_disk(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", note="hello"):
            with tracer.span("b"):
                pass
        path = write_trace(tmp_path / "trace.json", tracer)
        loaded = json.loads(path.read_text())
        assert loaded == trace_to_chrome_json(tracer)
        assert len(_x_events(loaded)) == 2

    def test_empty_tracer_is_still_loadable(self, tmp_path):
        path = write_trace(tmp_path / "empty.json", Tracer())
        loaded = json.loads(path.read_text())
        assert _x_events(loaded) == []


class TestMetricsSchema:
    def test_envelope(self):
        doc = metrics_to_json(MetricsRegistry())
        assert doc["format"] == METRICS_FORMAT
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["metrics"] == []

    def test_merges_multiple_registries_sorted(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("profiling.runs", gpu="V100").inc(2)
        second.counter("store.misses", kind="profile").inc(1)
        second.counter("profiling.records").inc(30)
        doc = metrics_to_json(first, second)
        names = [r["name"] for r in doc["metrics"]]
        assert names == ["profiling.records", "profiling.runs", "store.misses"]

    def test_round_trip_through_disk(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("store.bytes_read", kind="figure").inc(4096)
        registry.histogram("profile.duration_s").observe(1.25)
        path = write_metrics(tmp_path / "metrics.json", registry)
        loaded = json.loads(path.read_text())
        assert loaded == metrics_to_json(registry)
        by_name = {r["name"]: r for r in loaded["metrics"]}
        assert by_name["store.bytes_read"]["value"] == 4096
        assert by_name["profile.duration_s"]["count"] == 1
