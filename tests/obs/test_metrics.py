"""Tests for repro.obs.metrics: the registry and its instruments."""

import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


class TestRegistryIdentity:
    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("store.misses", kind="profile")
        b = registry.counter("store.misses", kind="profile")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        profile = registry.counter("store.misses", kind="profile")
        figure = registry.counter("store.misses", kind="figure")
        profile.inc(3)
        assert figure.value == 0
        assert len(registry) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", alpha="1", beta="2")
        b = registry.counter("x", beta="2", alpha="1")
        assert a is b

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(TypeError, match="already registered as counter"):
            registry.gauge("dual")


class TestInstruments:
    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(5)
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.value == 5

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("h")
        for v in (2.0, 4.0, 9.0):
            histogram.observe(v)
        assert histogram.count == 3
        assert histogram.sum == 15.0
        assert histogram.min == 2.0
        assert histogram.max == 9.0
        assert histogram.mean == 5.0

    def test_empty_histogram_snapshot_is_zeros(self):
        snap = MetricsRegistry().histogram("h").snapshot()
        assert snap["count"] == 0 and snap["mean"] == 0.0

    def test_counter_is_thread_safe(self):
        counter = MetricsRegistry().counter("racy")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestSnapshot:
    def test_snapshot_is_sorted_and_stable_schema(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc(1)
        registry.gauge("a.first", kind="x").set(2)
        registry.histogram("m.middle").observe(1.5)
        records = registry.snapshot()
        assert [r["name"] for r in records] == ["a.first", "m.middle", "z.last"]
        gauge, histogram, counter = records
        assert gauge == {"name": "a.first", "type": "gauge",
                         "labels": {"kind": "x"}, "value": 2}
        assert counter == {"name": "z.last", "type": "counter",
                           "labels": {}, "value": 1}
        assert set(histogram) == {"name", "type", "labels", "count", "sum",
                                  "min", "max", "mean"}


class TestDefaultRegistry:
    def test_default_is_a_process_singleton(self):
        assert default_registry() is default_registry()

    def test_set_default_registry_swaps_and_restores(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is not mine
