"""Tests for repro.obs.spans: nesting, threading, and the disabled path."""

import threading

from repro.obs.spans import (
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    span,
    traced,
    tracing_enabled,
)
from repro.obs.spans import _NOOP_SPAN  # noqa: F401 - identity check below


class TestTracerNesting:
    def test_with_block_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", model="alexnet"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["outer"]
        (outer,) = roots
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]

    def test_timing_is_monotonic_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (outer,) = tracer.roots()
        (inner,) = outer.children
        assert outer.end_us is not None and inner.end_us is not None
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us
        assert inner.duration_us >= 0.0
        assert outer.duration_us >= inner.duration_us

    def test_sequential_roots_accumulate(self):
        tracer = Tracer()
        for name in ("first", "second", "third"):
            with tracer.span(name):
                pass
        assert [r.name for r in tracer.roots()] == ["first", "second", "third"]
        assert len(tracer) == 3

    def test_attributes_and_set_attribute(self):
        tracer = Tracer()
        with tracer.span("work", model="vgg_19", ops=7) as s:
            s.set_attribute("outcome", "hit")
        (root,) = tracer.roots()
        assert root.attributes == {"model": "vgg_19", "ops": 7, "outcome": "hit"}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        try:
            with tracer.span("fails"):
                raise ValueError("boom")
        except ValueError:
            pass
        (root,) = tracer.roots()
        assert root.attributes["error"] == "ValueError"
        assert root.end_us is not None

    def test_find_and_all_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert len(tracer.find("b")) == 2
        assert [s.name for s in tracer.all_spans()] == ["a", "b", "b"]


class TestThreadInterleaving:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(label):
            with tracer.span(f"root.{label}", thread=label):
                barrier.wait(timeout=5)
                with tracer.span(f"child.{label}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(str(i),)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots()
        # Both threads' spans are roots (no cross-thread nesting), each
        # with exactly its own child.
        assert sorted(r.name for r in roots) == ["root.0", "root.1"]
        for root in roots:
            label = root.name.split(".")[1]
            assert [c.name for c in root.children] == [f"child.{label}"]
            assert root.thread_id == root.children[0].thread_id
        assert roots[0].thread_id != roots[1].thread_id

    def test_concurrent_spans_are_all_recorded(self):
        tracer = Tracer()

        def worker():
            for _ in range(50):
                with tracer.span("unit"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.find("unit")) == 200


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert active_tracer() is None

    def test_span_returns_shared_noop(self):
        first = span("anything", key="value")
        second = span("other")
        assert first is second  # the shared singleton: no allocation
        with first as s:
            s.set_attribute("ignored", 1)  # must not raise

    def test_enable_disable_round_trip(self):
        tracer = enable_tracing()
        assert tracing_enabled() and active_tracer() is tracer
        with span("recorded"):
            pass
        returned = disable_tracing()
        assert returned is tracer
        assert not tracing_enabled()
        assert [r.name for r in tracer.roots()] == ["recorded"]
        # Spans opened after disable are no-ops, not recorded.
        with span("dropped"):
            pass
        assert len(tracer) == 1

    def test_enable_with_explicit_tracer(self):
        mine = Tracer()
        assert enable_tracing(mine) is mine
        with span("x"):
            pass
        disable_tracing()
        assert len(mine) == 1


class TestTracedDecorator:
    def test_traced_records_scalar_kwargs(self):
        @traced("unit.work")
        def work(n_iterations, dataset=None):
            return n_iterations * 2

        tracer = enable_tracing()
        assert work(n_iterations=21, dataset=[1, 2]) == 42
        disable_tracing()
        (root,) = tracer.roots()
        assert root.name == "unit.work"
        # Scalars become attributes; non-scalars (the list) are dropped.
        assert root.attributes == {"n_iterations": 21}

    def test_traced_is_transparent_when_disabled(self):
        calls = []

        @traced("unit.work")
        def work(x):
            calls.append(x)
            return x + 1

        assert work(1) == 2
        assert calls == [1]
        assert work.__name__ == "work"
