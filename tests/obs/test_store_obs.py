"""Store observability: counters live on the registry, hot paths get spans."""

from repro.artifacts import kinds
from repro.artifacts.store import ArtifactStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer, disable_tracing, enable_tracing

RAW = kinds.FIGURE


def encode(text: str) -> object:
    return kinds.encode_figure("t", text)


def fetch(store: ArtifactStore, spec: dict, value: str = "rendered") -> str:
    return store.get_or_create(RAW, spec, lambda: value, encode,
                               kinds.decode_figure)


class TestCountersOnRegistry:
    def test_counters_are_registry_instruments(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fetch(store, {"figure": "t", "iterations": 1})
        fetch(store, {"figure": "t", "iterations": 1})
        # The same numbers are visible through both surfaces: the legacy
        # attribute view and the metrics registry.
        counters = store.counters[RAW.name]
        assert counters.misses == 1
        assert counters.hits_memory == 1
        registry_records = {
            (r["name"], r["labels"]["kind"]): r["value"]
            for r in store.metrics.snapshot()
        }
        assert registry_records[("store.misses", RAW.name)] == 1
        assert registry_records[("store.hits_memory", RAW.name)] == 1
        assert registry_records[("store.bytes_written", RAW.name)] > 0

    def test_independent_stores_do_not_share_counters(self, tmp_path):
        first = ArtifactStore(tmp_path / "a")
        second = ArtifactStore(tmp_path / "b")
        fetch(first, {"figure": "t", "iterations": 1})
        assert first.counters[RAW.name].misses == 1
        # The second store's registry never saw the first store's traffic.
        assert second.metrics.counter("store.misses", kind=RAW.name).value == 0
        assert first.metrics is not second.metrics

    def test_injected_registry_is_used(self, tmp_path):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store", metrics=registry)
        assert store.metrics is registry
        fetch(store, {"figure": "t", "iterations": 1})
        assert registry.counter("store.misses", kind=RAW.name).value == 1

    def test_to_json_shape_unchanged(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fetch(store, {"figure": "t", "iterations": 1})
        snapshot = store.counters_to_json()[RAW.name]
        assert set(snapshot) >= {"hits_memory", "hits_disk", "misses",
                                 "bytes_read", "bytes_written"}
        assert snapshot["misses"] == 1


class TestStoreSpans:
    def test_compute_and_write_spans_on_miss(self, tmp_path):
        tracer = enable_tracing(Tracer())
        try:
            store = ArtifactStore(tmp_path / "store")
            fetch(store, {"figure": "t", "iterations": 1})
        finally:
            disable_tracing()
        names = {s.name for s in tracer.all_spans()}
        assert "store.compute" in names
        assert "store.write" in names
        (write_span,) = tracer.find("store.write")
        assert write_span.attributes["kind"] == RAW.name
        assert write_span.attributes["bytes"] > 0

    def test_disk_read_span_records_outcome(self, tmp_path):
        spec = {"figure": "t", "iterations": 1}
        fetch(ArtifactStore(tmp_path / "store"), spec)
        tracer = enable_tracing(Tracer())
        try:
            fetch(ArtifactStore(tmp_path / "store"), spec)
        finally:
            disable_tracing()
        reads = tracer.find("store.disk_read")
        assert reads and reads[-1].attributes["outcome"] == "hit"

    def test_no_spans_recorded_when_disabled(self, tmp_path):
        tracer = Tracer()  # never enabled
        store = ArtifactStore(tmp_path / "store")
        fetch(store, {"figure": "t", "iterations": 1})
        assert len(tracer) == 0


class TestLazyDirectory:
    def test_store_does_not_create_directory_until_write(self, tmp_path):
        target = tmp_path / "not-yet"
        store = ArtifactStore(target)
        assert not target.exists()
        assert store.entries() == []
        assert store.clear() == 0
        assert not target.exists()
        fetch(store, {"figure": "t", "iterations": 1})
        assert target.exists()
