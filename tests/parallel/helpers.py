"""Picklable task specs for the fan-out tests.

Worker processes unpickle tasks by qualified name, so anything submitted
to :func:`repro.parallel.run_fanout` must live in an importable module —
a class defined inside a test function cannot cross the process
boundary. These mirror the shape of :mod:`repro.parallel.plan` tasks but
are built to fail, die, or trace on demand.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

from repro.obs.spans import span


@dataclass(frozen=True)
class EchoTask:
    """Deterministic busywork: returns ``index ** 2``."""

    index: int

    def task_id(self) -> str:
        return f"echo:{self.index}"

    def run(self) -> int:
        return self.index * self.index


@dataclass(frozen=True)
class FlakyTask:
    """Raises on the first attempt, succeeds on the retry.

    Attempt tracking must survive the worker process dying with the
    attempt, so it lives on disk: the first run drops a marker file and
    raises; any later run sees the marker and returns.
    """

    marker_path: str

    def task_id(self) -> str:
        return "flaky"

    def run(self) -> str:
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as handle:
                handle.write("attempt 1 failed")
            raise RuntimeError("transient failure")
        return "recovered"


@dataclass(frozen=True)
class DoomedTask:
    """Fails every attempt — exercises the FanoutError path."""

    name: str

    def task_id(self) -> str:
        return f"doomed:{self.name}"

    def run(self) -> None:
        raise ValueError(f"bad cell {self.name}")


@dataclass(frozen=True)
class KillOnceTask:
    """SIGKILLs its own worker on the first attempt, succeeds on retry.

    Only submit this alongside at least one other task with ``jobs >= 2``:
    a single-task fan-out runs inline, and inline it would kill the test
    process itself.
    """

    marker_path: str

    def task_id(self) -> str:
        return "kill-once"

    def run(self) -> str:
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as handle:
                handle.write("about to die")
            os.kill(os.getpid(), signal.SIGKILL)
        return "survived"


@dataclass(frozen=True)
class SpanProbeTask:
    """Opens a nested span and reports its PID — for trace-merge tests."""

    name: str

    def task_id(self) -> str:
        return f"probe:{self.name}"

    def run(self) -> int:
        with span("probe.work", cell=self.name):
            return os.getpid()
