"""Fan-out vs the artifact store's locks: races, crashes, byte identity.

The profiling fan-out's whole safety story is the store's per-key
``O_CREAT|O_EXCL`` locks — these tests drive the lock path with *real*
worker processes racing on real keys, a worker SIGKILLed while holding a
lock, and full-sweep byte comparisons between job counts.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.artifacts import kinds
from repro.artifacts.workspace import Workspace
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TRAIN_MODELS
from repro.parallel import ProfileCellTask, run_fanout

SRC = Path(__file__).resolve().parents[2] / "src"


def _cell_task(workspace: Path, n_iterations: int = 5) -> ProfileCellTask:
    return ProfileCellTask(
        model="inception_v1", gpu_key="V100", n_iterations=n_iterations,
        batch_size=32, seed_context="", workspace_dir=str(workspace),
    )


def _cell_spec(n_iterations: int = 5) -> dict:
    """The exact artifact spec ``Workspace.profiles`` uses for the cell."""
    return {
        "models": ["inception_v1"], "gpus": ["V100"],
        "iterations": n_iterations, "batch": 32, "seed": "",
    }


def _tree_bytes(directory: Path) -> dict:
    return {
        path.relative_to(directory): path.read_bytes()
        for path in sorted(directory.rglob("*.json"))
    }


class TestRacingWorkers:
    def test_n_workers_racing_one_key_compute_exactly_once(self, tmp_path):
        """Three pool workers given the *same* profiling cell: the store
        lock elects one computer; the others block, then read its bytes.
        Each task reports its own worker's miss count, so compute-once is
        visible as the miss counts summing to 1."""
        workspace = tmp_path / "race-ws"
        outcomes = run_fanout([_cell_task(workspace)] * 3, jobs=3)
        misses = [outcome.value["misses"] for outcome in outcomes]
        assert sum(misses) == 1, f"expected exactly one compute, got {misses}"
        records = {outcome.value["records"] for outcome in outcomes}
        assert len(records) == 1  # losers read the winner's artifact
        # The race left no lock or temp debris behind.
        leftovers = [
            p for p in workspace.rglob("*") if p.suffix in (".lock", ".tmp")
        ]
        assert leftovers == []


class TestStaleLockBreaking:
    def test_sigkilled_lock_holder_does_not_wedge_the_cell(self, tmp_path):
        """A worker SIGKILLed mid-compute leaves its lock file behind; a
        later fan-out on the same cell must break the stale lock (after
        the staleness window) and compute, not block forever."""
        workspace = tmp_path / "crash-ws"
        holder_script = f"""
import sys, time
from repro.artifacts import kinds
from repro.artifacts.workspace import Workspace

ws = Workspace({str(workspace)!r})

def compute():
    print("HOLDING", flush=True)
    time.sleep(600)

ws.store.get_or_create(
    kinds.PROFILE, {_cell_spec()!r}, compute,
    kinds.encode_profiles, kinds.decode_profiles,
)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        holder = subprocess.Popen(
            [sys.executable, "-c", holder_script],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            # Wait until the child holds the lock (it prints from inside
            # the locked compute), then kill it mid-compute.
            line = holder.stdout.readline()
            assert line.strip() == "HOLDING", holder.stderr.read()
            holder.send_signal(signal.SIGKILL)
            holder.wait(timeout=60)
        finally:
            if holder.poll() is None:  # pragma: no cover - cleanup path
                holder.kill()

        store = Workspace(workspace).store
        key = store.key_for(kinds.PROFILE, _cell_spec())
        lock_path = store._lock_path(kinds.PROFILE, key)
        assert lock_path.exists(), "SIGKILLed holder should leave its lock"
        # Age the lock past the staleness window (default 300 s) instead
        # of sleeping through it.
        stale_mtime = time.time() - (store.lock_stale_s + 100)
        os.utime(lock_path, (stale_mtime, stale_mtime))

        [outcome] = run_fanout([_cell_task(workspace)], jobs=1)
        assert outcome.value["misses"] == 1  # broke the lock and computed
        assert outcome.value["records"] > 0
        assert not lock_path.exists()


class TestJobsByteEquality:
    def test_jobs_8_vs_jobs_1_across_the_zoo(self, tmp_path):
        """The headline determinism guarantee: a full training-zoo sweep
        at --jobs 8 is byte-identical to --jobs 1 — every per-cell
        artifact and the combined dataset artifact."""
        models, gpus, iterations = list(TRAIN_MODELS), list(GPU_KEYS), 10
        serial_dir = tmp_path / "jobs1"
        parallel_dir = tmp_path / "jobs8"
        Workspace(serial_dir).profiles(models, gpus, iterations, jobs=1)
        Workspace(parallel_dir).profiles(models, gpus, iterations, jobs=8)
        serial_tree = _tree_bytes(serial_dir)
        assert len(serial_tree) == len(models) * len(gpus) + 1
        assert _tree_bytes(parallel_dir) == serial_tree

    def test_assembled_sweep_matches_legacy_serial_artifact(self, tmp_path):
        """jobs=None (the pre-fan-out in-process sweep, no cell artifacts)
        and a fanned-out sweep store the combined dataset under the same
        key with the same bytes — the spec deliberately excludes jobs."""
        models, gpus, iterations = ["alexnet", "inception_v1"], ["V100", "K80"], 10
        legacy_dir = tmp_path / "legacy"
        fanned_dir = tmp_path / "fanned"
        legacy_ws = Workspace(legacy_dir)
        legacy_ws.profiles(models, gpus, iterations)
        Workspace(fanned_dir).profiles(models, gpus, iterations, jobs=2)
        spec = {
            "models": sorted(models), "gpus": sorted(gpus),
            "iterations": iterations, "batch": 32, "seed": "",
        }
        key = legacy_ws.store.key_for(kinds.PROFILE, spec)
        legacy_path = legacy_ws.store.path_for(kinds.PROFILE, key)
        fanned_path = Workspace(fanned_dir).store.path_for(kinds.PROFILE, key)
        assert legacy_path.exists() and fanned_path.exists()
        assert fanned_path.read_bytes() == legacy_path.read_bytes()

    def test_fitted_estimator_identical_at_any_job_count(self, tmp_path):
        """End to end: profile + regressions + comm fits under the fan-out
        produce a byte-identical fitted-estimator artifact."""
        serial_ws = Workspace(tmp_path / "fit-serial")
        fanned_ws = Workspace(tmp_path / "fit-fanned")
        serial_ws.fitted_ceer(30)
        fanned_ws.fitted_ceer(30, jobs=4)
        [serial_info] = serial_ws.store.entries("fitted")
        [fanned_info] = fanned_ws.store.entries("fitted")
        assert fanned_info.key == serial_info.key  # jobs is not in the spec
        assert fanned_info.path.read_bytes() == serial_info.path.read_bytes()
