"""The fan-out executor: ordering, retries, failures, observability."""

from __future__ import annotations

import os

import pytest

from repro.errors import FanoutError
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.obs.spans import disable_tracing, enable_tracing
from repro.parallel import TaskOutcome, resolve_jobs, run_fanout
from tests.parallel.helpers import (
    DoomedTask,
    EchoTask,
    FlakyTask,
    KillOnceTask,
    SpanProbeTask,
)


class TestOrderingAndEquivalence:
    def test_results_in_submission_order(self):
        outcomes = run_fanout([EchoTask(i) for i in range(6)], jobs=3)
        assert [o.task_id for o in outcomes] == [f"echo:{i}" for i in range(6)]
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert all(o.outcome == "ok" and o.attempts == 1 for o in outcomes)

    def test_inline_and_pool_return_identical_values(self):
        tasks = [EchoTask(i) for i in range(5)]
        serial = run_fanout(tasks, jobs=1)
        pooled = run_fanout(tasks, jobs=3)
        assert [o.value for o in serial] == [o.value for o in pooled]
        assert [o.task_id for o in serial] == [o.task_id for o in pooled]

    def test_single_task_runs_inline(self):
        """resolve_jobs caps at the task count, so one task never pays for
        a pool — and never deadlocks on a lock its parent already holds."""
        [outcome] = run_fanout([EchoTask(7)], jobs=8)
        assert outcome.value == 49
        assert outcome.worker_pid == os.getpid()

    def test_pool_tasks_run_in_worker_processes(self):
        outcomes = run_fanout([SpanProbeTask("a"), SpanProbeTask("b")], jobs=2)
        assert all(o.value != os.getpid() for o in outcomes)

    def test_empty_task_list(self):
        assert run_fanout([], jobs=4) == []


class TestResolveJobs:
    def test_none_means_cpu_count(self):
        assert resolve_jobs(None) == max(1, os.cpu_count() or 1)

    def test_capped_by_task_count(self):
        assert resolve_jobs(8, n_tasks=3) == 3

    def test_floor_is_one(self):
        assert resolve_jobs(0, n_tasks=5) == 1
        assert resolve_jobs(-2) == 1

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(4) == 4


class TestRetries:
    def test_transient_failure_retried_in_pool(self, tmp_path):
        flaky = FlakyTask(str(tmp_path / "flaky.marker"))
        outcomes = run_fanout([flaky, EchoTask(1)], jobs=2)
        by_id = {o.task_id: o for o in outcomes}
        assert by_id["flaky"].value == "recovered"
        assert by_id["flaky"].outcome == "retried"
        assert by_id["flaky"].attempts == 2
        assert by_id["echo:1"].value == 1

    def test_transient_failure_retried_inline(self, tmp_path):
        [outcome] = run_fanout([FlakyTask(str(tmp_path / "m"))], jobs=1)
        assert outcome.value == "recovered"
        assert outcome.outcome == "retried"
        assert outcome.attempts == 2

    def test_sigkilled_worker_retried_on_a_fresh_pool(self, tmp_path):
        """A worker dying mid-task breaks the whole pool; the retry round
        must build a new one rather than hang or crash the parent."""
        killer = KillOnceTask(str(tmp_path / "killed.marker"))
        outcomes = run_fanout([killer, EchoTask(2)], jobs=2)
        by_id = {o.task_id: o for o in outcomes}
        assert by_id["kill-once"].value == "survived"
        assert by_id["kill-once"].outcome == "retried"
        assert by_id["echo:2"].value == 4

    def test_persistent_failure_raises_structured_error(self):
        tasks = [EchoTask(1), DoomedTask("a"), DoomedTask("b")]
        with pytest.raises(FanoutError) as excinfo:
            run_fanout(tasks, jobs=2)
        failed_ids = [task_id for task_id, _ in excinfo.value.failures]
        assert failed_ids == ["doomed:a", "doomed:b"]
        assert "ValueError" in str(excinfo.value)
        assert "bad cell a" in str(excinfo.value)

    def test_persistent_failure_raises_inline_too(self):
        with pytest.raises(FanoutError) as excinfo:
            run_fanout([DoomedTask("solo")], jobs=1)
        assert excinfo.value.failures[0][0] == "doomed:solo"


class TestObservability:
    def test_outcome_counters_land_on_default_registry(self, tmp_path):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            run_fanout(
                [EchoTask(0), EchoTask(1), FlakyTask(str(tmp_path / "m"))],
                jobs=2,
            )
        finally:
            set_default_registry(previous)
        assert registry.counter("parallel.tasks", outcome="ok").value == 2
        assert registry.counter("parallel.tasks", outcome="retried").value == 1
        assert registry.counter("parallel.task_s").value > 0

    def test_failed_counter_incremented(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            with pytest.raises(FanoutError):
                run_fanout([DoomedTask("x"), EchoTask(1)], jobs=2)
        finally:
            set_default_registry(previous)
        assert registry.counter("parallel.tasks", outcome="failed").value == 1

    def test_worker_spans_merged_into_parent_trace(self):
        tracer = enable_tracing()
        try:
            outcomes = run_fanout([SpanProbeTask("a"), SpanProbeTask("b")], jobs=2)
        finally:
            disable_tracing()
        [fanout_span] = tracer.find("parallel.fanout")
        task_spans = [
            node for node in fanout_span.walk() if node.name == "parallel.task"
        ]
        assert len(task_spans) == 2
        # Each worker's subtree keeps its own trace row: the revived spans
        # carry the worker PID as their thread id.
        worker_pids = {o.value for o in outcomes}
        assert {node.thread_id for node in task_spans} == worker_pids
        probes = [n for n in fanout_span.walk() if n.name == "probe.work"]
        assert {p.attributes["cell"] for p in probes} == {"a", "b"}
        for probe in probes:
            assert probe.end_us is not None
            assert probe.end_us >= probe.start_us

    def test_inline_spans_nest_without_serialization(self):
        tracer = enable_tracing()
        try:
            run_fanout([SpanProbeTask("solo")], jobs=1)
        finally:
            disable_tracing()
        [task_span] = tracer.find("parallel.task")
        assert task_span.attributes["mode"] == "inline"
        assert [c.name for c in task_span.children] == ["probe.work"]


class TestOutcomeShape:
    def test_task_outcome_fields(self):
        [outcome] = run_fanout([EchoTask(3)], jobs=1)
        assert isinstance(outcome, TaskOutcome)
        assert outcome.duration_s >= 0
        assert outcome.worker_pid > 0
