"""Plan tasks: each work unit matches its serial counterpart exactly.

The fan-out's byte-identity guarantee rests on every task being a pure
function of its spec running the *same code* as the serial loop — these
tests pin that down cell by cell (regressions, comm observations, comm
fits, profile cells) with strict equality, not tolerances.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.classify import classify_operations
from repro.core.comm_model import (
    collect_comm_observations,
    fit_comm_model,
)
from repro.core.op_models import fit_compute_models
from repro.parallel import ProfileCellTask, run_fanout

MODELS = ["alexnet", "inception_v1"]
GPUS = ["V100", "K80"]
ITERATIONS = 20


def _cell_task(model: str, gpu_key: str, directory: Path) -> ProfileCellTask:
    return ProfileCellTask(
        model=model, gpu_key=gpu_key, n_iterations=ITERATIONS,
        batch_size=32, seed_context="", workspace_dir=str(directory),
    )


class TestProfileCellTask:
    def test_computes_once_then_hits_disk(self, tmp_path):
        task = _cell_task("alexnet", "V100", tmp_path)
        first = task.run()
        assert first["records"] > 0
        assert first["misses"] == 1
        # A fresh task (fresh Workspace, fresh counters) sees a disk hit.
        second = _cell_task("alexnet", "V100", tmp_path).run()
        assert second["records"] == first["records"]
        assert second["misses"] == 0

    def test_task_id_names_the_cell(self):
        task = _cell_task("alexnet", "V100", Path("unused"))
        assert task.task_id() == "profile:alexnet:V100"

    def test_fanout_cells_byte_identical_to_serial_cells(self, tmp_path):
        """A fanned-out sweep writes the same per-cell artifacts, byte for
        byte, as serially fetching each cell — same spec, same seeds."""
        parallel_dir = tmp_path / "parallel"
        serial_dir = tmp_path / "serial"
        cells = [(m, g) for m in MODELS for g in GPUS]
        run_fanout([_cell_task(m, g, parallel_dir) for m, g in cells], jobs=2)

        from repro.artifacts.workspace import Workspace

        serial_ws = Workspace(serial_dir)
        for model, gpu_key in cells:
            serial_ws.profiles([model], [gpu_key], ITERATIONS)

        def tree(directory: Path):
            return {
                p.relative_to(directory): p.read_bytes()
                for p in sorted(directory.rglob("*.json"))
            }

        parallel_tree = tree(parallel_dir)
        assert parallel_tree, "fan-out produced no artifacts"
        assert parallel_tree == tree(serial_dir)


class TestFitParity:
    def test_regression_fits_identical_serial_vs_fanout(self, train_profiles_small):
        classification = classify_operations(train_profiles_small)
        serial = fit_compute_models(train_profiles_small, classification)
        fanned = fit_compute_models(train_profiles_small, classification, jobs=2)
        assert set(serial.heavy_models) == set(fanned.heavy_models)
        for key, model in serial.heavy_models.items():
            # RegressionModel is a frozen dataclass of floats: == means
            # bit-identical coefficients, not merely close ones.
            assert fanned.heavy_models[key].regression == model.regression
        assert fanned.light_median_us == serial.light_median_us
        assert fanned.cpu_median_us == serial.cpu_median_us

    def test_comm_observations_identical_serial_vs_fanout(self):
        kwargs = dict(
            gpu_counts=(1, 2), n_iterations=ITERATIONS, seed_context="test",
        )
        serial = collect_comm_observations(MODELS, GPUS, **kwargs)
        fanned = collect_comm_observations(MODELS, GPUS, jobs=2, **kwargs)
        assert fanned == serial

    def test_comm_fits_identical_serial_vs_fanout(self):
        # The comm fit needs >= 3 CNNs per (GPU, k) group.
        observations = collect_comm_observations(
            MODELS + ["resnet_50"], GPUS, gpu_counts=(1, 2),
            n_iterations=ITERATIONS,
        )
        serial = fit_comm_model(observations)
        fanned = fit_comm_model(observations, jobs=2)
        assert fanned.models == serial.models
        assert fanned.r2 == serial.r2

    def test_prebuilt_graphs_fall_back_to_serial_collection(self, tiny_graph):
        """Graph objects aren't picklable task specs; jobs is ignored for
        them rather than failing."""
        kwargs = dict(gpu_counts=(1, 2), n_iterations=ITERATIONS)
        serial = collect_comm_observations([tiny_graph], ["V100"], **kwargs)
        fanned = collect_comm_observations([tiny_graph], ["V100"], jobs=2, **kwargs)
        assert fanned == serial
