"""Tests for the disk profile cache."""

import pytest

from repro.profiling.cache import ProfileCache


@pytest.fixture
def cache(tmp_path):
    return ProfileCache(tmp_path / "cache")


class TestCacheKey:
    def test_stable_and_order_insensitive(self):
        a = ProfileCache.cache_key(["m1", "m2"], ["V100", "T4"], 100, 32)
        b = ProfileCache.cache_key(["m2", "m1"], ["T4", "V100"], 100, 32)
        assert a == b

    def test_sensitive_to_configuration(self):
        base = ProfileCache.cache_key(["m1"], ["V100"], 100, 32)
        assert base != ProfileCache.cache_key(["m1"], ["V100"], 200, 32)
        assert base != ProfileCache.cache_key(["m1"], ["V100"], 100, 16)
        assert base != ProfileCache.cache_key(["m1"], ["V100"], 100, 32, "other")


class TestGetOrProfile:
    def test_miss_then_hit(self, cache, tiny_graph):
        key = ProfileCache.cache_key(["inception_v1"], ["V100"], 30, 32)
        assert cache.load(key) is None
        first = cache.get_or_profile(["inception_v1"], ["V100"], 30, 32)
        assert cache.load(key) is not None
        second = cache.get_or_profile(["inception_v1"], ["V100"], 30, 32)
        assert second.records == first.records

    def test_entries_and_clear(self, cache):
        cache.get_or_profile(["inception_v1"], ["V100"], 20, 32)
        cache.get_or_profile(["inception_v1"], ["T4"], 20, 32)
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_cached_dataset_usable_for_fitting(self, cache):
        from repro.core.classify import classify_operations

        dataset = cache.get_or_profile(
            ["inception_v1", "vgg_11", "resnet_50"], ["K80"], 30, 32
        )
        reloaded = cache.get_or_profile(
            ["inception_v1", "vgg_11", "resnet_50"], ["K80"], 30, 32
        )
        classification = classify_operations(reloaded)
        assert classification.heavy
        assert dataset.op_types() == reloaded.op_types()
