"""Tests for the disk profile cache."""

import json

import pytest

from repro.profiling.cache import CACHE_FORMAT_VERSION, ProfileCache


@pytest.fixture
def cache(tmp_path):
    return ProfileCache(tmp_path / "cache")


class TestCacheKey:
    def test_stable_and_order_insensitive(self):
        a = ProfileCache.cache_key(["m1", "m2"], ["V100", "T4"], 100, 32)
        b = ProfileCache.cache_key(["m2", "m1"], ["T4", "V100"], 100, 32)
        assert a == b

    def test_sensitive_to_configuration(self):
        base = ProfileCache.cache_key(["m1"], ["V100"], 100, 32)
        assert base != ProfileCache.cache_key(["m1"], ["V100"], 200, 32)
        assert base != ProfileCache.cache_key(["m1"], ["V100"], 100, 16)
        assert base != ProfileCache.cache_key(["m1"], ["V100"], 100, 32, "other")

    def test_format_version_folded_into_key(self, monkeypatch):
        """Bumping the on-disk layout version must re-address every entry,
        so stale layouts self-invalidate instead of failing to parse."""
        base = ProfileCache.cache_key(["m1"], ["V100"], 100, 32)
        monkeypatch.setattr(
            "repro.profiling.cache.CACHE_FORMAT_VERSION", CACHE_FORMAT_VERSION + 1
        )
        assert ProfileCache.cache_key(["m1"], ["V100"], 100, 32) != base


class TestGetOrProfile:
    def test_miss_then_hit(self, cache, tiny_graph):
        key = ProfileCache.cache_key(["inception_v1"], ["V100"], 30, 32)
        assert cache.load(key) is None
        first = cache.get_or_profile(["inception_v1"], ["V100"], 30, 32)
        assert cache.load(key) is not None
        second = cache.get_or_profile(["inception_v1"], ["V100"], 30, 32)
        assert second.records == first.records

    def test_entries_and_clear(self, cache):
        cache.get_or_profile(["inception_v1"], ["V100"], 20, 32)
        cache.get_or_profile(["inception_v1"], ["T4"], 20, 32)
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    @pytest.mark.parametrize(
        "corruption",
        [
            "",  # truncated to nothing
            '[{"model": "inception_v1"',  # truncated mid-object
            "not json at all",
            '{"records": []}',  # wrong top-level shape
            '[{"unexpected": "fields"}]',  # schema mismatch
        ],
    )
    def test_corrupt_cache_treated_as_miss(self, cache, corruption):
        """A corrupt or truncated cache file must re-profile and overwrite,
        never crash ``get_or_profile``."""
        key = ProfileCache.cache_key(["inception_v1"], ["V100"], 20, 32)
        cache._path(key).write_text(corruption)
        assert cache.load(key) is None
        dataset = cache.get_or_profile(["inception_v1"], ["V100"], 20, 32)
        assert len(dataset) > 0
        # The bad file was overwritten with a loadable one.
        reloaded = cache.load(key)
        assert reloaded is not None
        assert reloaded.records == dataset.records

    def test_cached_dataset_usable_for_fitting(self, cache):
        from repro.core.classify import classify_operations

        dataset = cache.get_or_profile(
            ["inception_v1", "vgg_11", "resnet_50"], ["K80"], 30, 32
        )
        reloaded = cache.get_or_profile(
            ["inception_v1", "vgg_11", "resnet_50"], ["K80"], 30, 32
        )
        classification = classify_operations(reloaded)
        assert classification.heavy
        assert dataset.op_types() == reloaded.op_types()
