"""Tests for per-op size-feature extraction."""

import pytest

from repro.errors import UnknownOpError
from repro.graph.ops import Operation
from repro.graph.shapes import TensorShape
from repro.profiling.features import (
    COMPUTE_SCHEMA,
    SIZE_SCHEMA,
    describe_features,
    feature_matrix,
    feature_schema,
    features_for,
    is_host_op,
)


def _conv_op():
    x = TensorShape.of(2, 8, 8, 4)
    f = TensorShape.of(3, 3, 4, 16)
    y = TensorShape.of(2, 8, 8, 16)
    return Operation(name="c/Conv2D", op_type="Conv2D", inputs=(x, f),
                     outputs=(y,), attrs={"kernel": (3, 3)})


def _relu_op():
    s = TensorShape.of(2, 8, 8, 4)
    return Operation(name="r/Relu", op_type="Relu", inputs=(s,), outputs=(s,))


class TestSchema:
    def test_conv_ops_get_compute_schema(self):
        for op_type in ("Conv2D", "Conv2DBackpropFilter", "MatMul"):
            assert feature_schema(op_type) == COMPUTE_SCHEMA

    def test_other_ops_get_size_schema(self):
        for op_type in ("Relu", "MaxPool", "FusedBatchNormV3", "AddV2"):
            assert feature_schema(op_type) == SIZE_SCHEMA

    def test_unknown_type_raises(self):
        with pytest.raises(UnknownOpError):
            feature_schema("Conv3D")


class TestFeatures:
    def test_vector_length_matches_schema(self):
        assert len(features_for(_conv_op())) == len(COMPUTE_SCHEMA)
        assert len(features_for(_relu_op())) == len(SIZE_SCHEMA)

    def test_size_features_are_scaled_bytes(self):
        op = _relu_op()
        f = features_for(op)
        assert f[0] == pytest.approx(op.input_bytes / 1e6)
        assert f[1] == pytest.approx(op.output_bytes / 1e6)

    def test_mac_feature_matches_flops(self):
        from repro.graph.flops import flop_count

        op = _conv_op()
        f = features_for(op)
        assert f[2] == pytest.approx(flop_count(op) / 2 / 1e8)

    def test_mac_density_feature(self):
        op = _conv_op()
        f = features_for(op)
        macs = (2 * 8 * 8 * 16) * 3 * 3 * 4
        elements = max(op.inputs[0].num_elements + op.inputs[1].num_elements,
                       op.outputs[0].num_elements)
        assert f[3] == pytest.approx(macs / elements / 1e3)

    def test_describe_features_named(self):
        d = describe_features(_conv_op())
        assert set(d) == set(COMPUTE_SCHEMA)

    def test_feature_matrix_stacks(self):
        m = feature_matrix([features_for(_relu_op()), features_for(_relu_op())])
        assert m.shape == (2, 2)

    def test_is_host_op(self):
        assert is_host_op("SparseToDense")
        assert not is_host_op("Conv2D")

    def test_features_all_finite_on_real_model(self):
        import numpy as np

        from repro.models import build_model

        g = build_model("inception_v1", batch_size=8)
        for op in g:
            f = features_for(op)
            assert np.isfinite(f).all()
            assert all(v >= 0 for v in f)
