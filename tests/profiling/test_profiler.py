"""Tests for the profiler (measurement collection)."""

import pytest

from repro.errors import ProfilingError
from repro.profiling.features import features_for
from repro.profiling.profiler import Profiler


class TestProfiler:
    def test_one_record_per_op(self, tiny_graph):
        ds = Profiler(n_iterations=30).profile(tiny_graph, "V100")
        assert len(ds) == len(tiny_graph)

    def test_records_carry_features(self, tiny_graph):
        ds = Profiler(n_iterations=30).profile(tiny_graph, "V100")
        by_name = {op.name: op for op in tiny_graph}
        for record in ds:
            assert record.features == features_for(by_name[record.op_name])

    def test_rejects_single_iteration(self):
        with pytest.raises(ProfilingError):
            Profiler(n_iterations=1)

    def test_profile_many_merges(self, tiny_graph):
        ds = Profiler(n_iterations=20).profile_many(
            [tiny_graph], ["V100", "K80"]
        )
        assert len(ds) == 2 * len(tiny_graph)
        assert ds.gpu_keys() == ("K80", "V100")

    def test_profile_many_empty_rejected(self):
        with pytest.raises(ProfilingError):
            Profiler(n_iterations=20).profile_many([], [])

    def test_zoo_model_by_name(self):
        ds = Profiler(n_iterations=20, batch_size=8).profile("alexnet", "T4")
        assert ds.models() == ("alexnet",)
        assert len(ds.for_op_type("Conv2D")) == 5

    def test_cpu_ops_present(self, tiny_graph):
        ds = Profiler(n_iterations=20).profile(tiny_graph, "V100")
        assert len(ds.cpu_records()) > 0

    def test_session_dataset_consistency(self, train_profiles_small):
        """The shared session fixture covers 8 models x 4 GPUs."""
        assert len(train_profiles_small.models()) == 8
        assert len(train_profiles_small.gpu_keys()) == 4
        assert len(train_profiles_small) > 10_000


class _CollidingGraph:
    """A duck-typed graph whose operations tuple repeats a name.

    ``OpGraph.add`` rejects duplicate names at construction, so the
    profiler's guard exists for graph-like objects assembled outside the
    builder (hand-rolled stubs, deserialized graphs from other tools).
    """

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    @property
    def operations(self):
        ops = self._inner.operations
        return ops + (ops[0],)


class TestDuplicateOpNames:
    def test_colliding_names_raise_instead_of_misattributing(self, tiny_graph):
        """Regression: a name collision used to silently attribute every
        colliding timing to whichever op won the dict insertion."""
        with pytest.raises(ProfilingError) as excinfo:
            Profiler(n_iterations=20).profile(_CollidingGraph(tiny_graph), "V100")
        message = str(excinfo.value)
        assert "duplicate operation names" in message
        assert tiny_graph.operations[0].name in message

    def test_clean_graph_unaffected(self, tiny_graph):
        ds = Profiler(n_iterations=20).profile(tiny_graph, "V100")
        assert len(ds) == len(tiny_graph)
