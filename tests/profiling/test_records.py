"""Tests for ProfileRecord / ProfileDataset."""

import pytest

from repro.errors import ProfilingError
from repro.profiling.records import ProfileDataset, ProfileRecord


def _record(model="m", gpu="V100", op_name="a/Relu", op_type="Relu",
            device="GPU", mean=10.0, median=9.0, std=1.0, features=(1.0, 1.0)):
    return ProfileRecord(
        model=model, gpu_key=gpu, op_name=op_name, op_type=op_type,
        device=device, features=tuple(features), input_bytes=1000,
        n_samples=50, mean_us=mean, std_us=std, median_us=median,
    )


@pytest.fixture
def dataset():
    return ProfileDataset([
        _record(),
        _record(gpu="K80", op_name="a/Relu", mean=50.0),
        _record(op_name="b/Conv2D", op_type="Conv2D", mean=100.0),
        _record(model="m2", op_name="c/SparseToDense", op_type="SparseToDense",
                device="CPU", mean=300.0),
    ])


class TestQueries:
    def test_len_iter_bool(self, dataset):
        assert len(dataset) == 4 and bool(dataset)
        assert not ProfileDataset([])

    def test_for_gpu(self, dataset):
        assert len(dataset.for_gpu("K80")) == 1

    def test_for_model(self, dataset):
        assert len(dataset.for_model("m2")) == 1

    def test_for_op_type(self, dataset):
        assert len(dataset.for_op_type("Relu")) == 2

    def test_device_split(self, dataset):
        assert len(dataset.gpu_records()) == 3
        assert len(dataset.cpu_records()) == 1

    def test_set_accessors(self, dataset):
        assert dataset.op_types() == ("Conv2D", "Relu", "SparseToDense")
        assert dataset.gpu_keys() == ("K80", "V100")
        assert dataset.models() == ("m", "m2")

    def test_group_by_op_type(self, dataset):
        groups = dataset.group_by_op_type()
        assert set(groups) == {"Relu", "Conv2D", "SparseToDense"}
        assert len(groups["Relu"]) == 2

    def test_merge_and_concat(self, dataset):
        merged = dataset.merge(dataset)
        assert len(merged) == 8
        assert len(ProfileDataset.concat([dataset, dataset, dataset])) == 12

    def test_mean_time_by_op_type(self, dataset):
        means = dataset.mean_us_by_op_type()
        assert means["Relu"] == pytest.approx(30.0)  # (10 + 50) / 2

    def test_total_time_by_op_type(self, dataset):
        totals = dataset.total_us_by_op_type()
        assert totals["Relu"] == pytest.approx(60.0)

    def test_normalized_std(self):
        assert _record(mean=10.0, std=1.0).normalized_std == pytest.approx(0.1)
        assert _record(mean=0.0, std=1.0).normalized_std == 0.0


class TestSerialisation:
    def test_json_round_trip(self, dataset, tmp_path):
        path = tmp_path / "profiles.json"
        dataset.to_json(path)
        restored = ProfileDataset.from_json(path)
        assert restored.records == dataset.records

    def test_from_json_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ProfilingError):
            ProfileDataset.from_json(path)
