"""Fixtures for the serving-layer tests.

The estimator snapshot is fitted once per session (shared ``ceer_small``)
and saved to disk once per test package; each test builds its own
``ServeState`` with a private metrics registry so counter assertions
never see another test's traffic.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.core.persistence import save_estimator
from repro.obs.metrics import MetricsRegistry
from repro.serve.app import ServeApp, ServeState

#: Small warm list — enough to exercise the warm path without paying for
#: the full zoo on every ServeState construction.
WARM_MODELS = ("alexnet",)


@pytest.fixture(scope="package")
def serve_estimator_path(ceer_small, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "ceer.json"
    save_estimator(ceer_small, path)
    return str(path)


@pytest.fixture
def serve_state(serve_estimator_path):
    state = ServeState(
        serve_estimator_path, cache_size=64, warm=True, models=WARM_MODELS,
        registry=MetricsRegistry(),
    )
    yield state
    state.close()


@pytest.fixture
def serve_app(serve_state):
    return ServeApp(serve_state)


async def asgi_request(
    app: ServeApp, method: str, path: str,
    body: Optional[Dict[str, Any]] = None, query: bytes = b"",
) -> Tuple[int, Any]:
    """Drive the ASGI callable directly; returns (status, parsed body)."""
    raw = json.dumps(body).encode() if body is not None else b""
    status_box: Dict[str, int] = {}
    chunks = []

    async def receive() -> Dict[str, Any]:
        return {"type": "http.request", "body": raw, "more_body": False}

    async def send(message: Dict[str, Any]) -> None:
        if message["type"] == "http.response.start":
            status_box["status"] = message["status"]
        else:
            chunks.append(message.get("body", b""))

    scope = {"type": "http", "method": method, "path": path,
             "query_string": query}
    await app(scope, receive, send)
    text = b"".join(chunks).decode("utf-8", "replace")
    try:
        return status_box.get("status", 0), json.loads(text)
    except ValueError:
        return status_box.get("status", 0), text


def request(app: ServeApp, method: str, path: str,
            body: Optional[Dict[str, Any]] = None,
            query: bytes = b"") -> Tuple[int, Any]:
    """Synchronous wrapper for single-request tests."""
    return asyncio.run(asgi_request(app, method, path, body, query))


def counter_total(registry: MetricsRegistry, name: str) -> float:
    """Sum of a counter across all label sets (0.0 when never touched)."""
    return sum(
        float(record["value"])
        for record in registry.snapshot()
        if record["name"] == name and record["type"] == "counter"
    )
