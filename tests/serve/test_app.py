"""The ASGI application: endpoints, error mapping, coalescing, hot swap."""

import asyncio

from tests.serve.conftest import asgi_request, counter_total, request


class TestEndpoints:
    def test_healthz_reports_generation_and_cache(self, serve_app):
        status, doc = request(serve_app, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["generation"] == 1
        assert doc["backend"] == "per_gpu"
        assert doc["cache"]["entries"] == 0
        assert doc["uptime_s"] >= 0

    def test_predict_returns_prediction_with_generation(self, serve_app):
        status, doc = request(serve_app, "POST", "/predict",
                              {"model": "alexnet", "gpu": "V100"})
        assert status == 200
        assert doc["generation"] == 1
        prediction = doc["prediction"]
        assert prediction["model"] == "alexnet"
        assert prediction["gpu"] == "V100"
        assert prediction["per_iteration_ms"] > 0
        assert prediction["cost_usd"] > 0

    def test_recommend_returns_best_and_runners_up(self, serve_app):
        status, doc = request(serve_app, "POST", "/recommend",
                              {"model": "resnet_50"})
        assert status == 200
        assert doc["objective"]
        assert doc["best"]["instance"]
        assert doc["best"]["cost_usd"] > 0
        assert len(doc["runners_up"]) <= 3
        assert doc["n_feasible"] >= 1

    def test_pareto_returns_frontier(self, serve_app):
        status, doc = request(serve_app, "POST", "/pareto",
                              {"model": "alexnet", "batches": [16, 32]})
        assert status == 200
        frontier = doc["frontier"]
        assert 0 < len(frontier) <= doc["n_candidates"]
        # frontier invariant: as time grows, cost must shrink
        hours = [p["total_hours"] for p in frontier]
        costs = [p["cost_usd"] for p in frontier]
        assert hours == sorted(hours)
        assert costs == sorted(costs, reverse=True)

    def test_metrics_json_and_prometheus(self, serve_app):
        request(serve_app, "POST", "/predict",
                {"model": "alexnet", "gpu": "V100"})
        status, doc = request(serve_app, "GET", "/metrics")
        assert status == 200
        names = {record["name"] for record in doc["metrics"]}
        assert "serve.requests" in names
        status, text = request(serve_app, "GET", "/metrics",
                               query=b"format=prometheus")
        assert status == 200
        assert isinstance(text, str)
        assert "serve_requests" in text


class TestErrorMapping:
    def test_unknown_route_is_404(self, serve_app):
        status, doc = request(serve_app, "GET", "/nope")
        assert status == 404
        assert "error" in doc

    def test_wrong_method_is_405(self, serve_app):
        status, doc = request(serve_app, "GET", "/predict")
        assert status == 405
        assert "error" in doc

    def test_malformed_json_is_400(self, serve_app):
        async def scenario():
            async def receive():
                return {"type": "http.request", "body": b"{nope",
                        "more_body": False}

            status_box = {}

            async def send(message):
                if message["type"] == "http.response.start":
                    status_box["status"] = message["status"]

            await serve_app({"type": "http", "method": "POST",
                             "path": "/predict", "query_string": b""},
                            receive, send)
            return status_box["status"]

        assert asyncio.run(scenario()) == 400

    def test_schema_violation_is_400(self, serve_app):
        status, doc = request(serve_app, "POST", "/predict",
                              {"model": "alexnet"})
        assert status == 400
        assert "gpu" in doc["error"]

    def test_unknown_model_is_422(self, serve_app):
        status, doc = request(serve_app, "POST", "/predict",
                              {"model": "not_a_net", "gpu": "V100"})
        assert status == 422
        assert "error" in doc

    def test_statuses_are_counted_per_endpoint(self, serve_app):
        request(serve_app, "POST", "/predict", {"model": "alexnet"})
        request(serve_app, "GET", "/healthz")
        counted = {
            (r["labels"]["endpoint"], r["labels"]["status"])
            for r in serve_app.state.registry.snapshot()
            if r["name"] == "serve.requests"
        }
        assert ("/predict", "400") in counted
        assert ("/healthz", "200") in counted


class TestCoalescing:
    def test_identical_burst_computes_exactly_once(self, serve_app):
        body = {"model": "alexnet", "gpu": "V100", "batch": 48}

        async def scenario():
            return await asyncio.gather(*(
                asgi_request(serve_app, "POST", "/predict", body)
                for _ in range(20)
            ))

        results = asyncio.run(scenario())
        assert all(status == 200 for status, _ in results)
        docs = [doc for _, doc in results]
        assert all(doc == docs[0] for doc in docs)
        registry = serve_app.state.registry
        assert counter_total(registry, "serve.evaluations") == 1
        assert counter_total(registry, "serve.coalesced") == 19

    def test_repeat_request_is_an_lru_hit(self, serve_app):
        body = {"model": "alexnet", "gpu": "K80"}
        request(serve_app, "POST", "/predict", body)
        request(serve_app, "POST", "/predict", body)
        registry = serve_app.state.registry
        assert counter_total(registry, "serve.evaluations") == 1
        hits = [r for r in registry.snapshot()
                if r["name"] == "serve.cache"
                and r["labels"].get("outcome") == "hit"]
        assert hits and hits[0]["value"] == 1


class TestReload:
    def test_reload_bumps_generation_and_drops_cache(self, serve_app):
        async def scenario():
            await asgi_request(serve_app, "POST", "/predict",
                               {"model": "alexnet", "gpu": "V100"})
            status, doc = await asgi_request(serve_app, "POST",
                                             "/admin/reload", {})
            _, health = await asgi_request(serve_app, "GET", "/healthz")
            return status, doc, health

        status, doc, health = asyncio.run(scenario())
        assert status == 200
        assert doc["status"] == "reloaded"
        assert doc["generation"] == 2
        assert health["generation"] == 2
        assert health["cache"]["entries"] == 0
        registry = serve_app.state.registry
        assert counter_total(registry, "serve.reloads") == 1
        assert counter_total(registry, "serve.cache_dropped") == 1

    def test_reload_rejects_unknown_fields(self, serve_app):
        status, doc = request(serve_app, "POST", "/admin/reload",
                              {"path": "x.json", "force": True})
        assert status == 400
        assert "force" in doc["error"]

    def test_failed_reload_keeps_old_snapshot_live(self, serve_app):
        async def scenario():
            status, doc = await asgi_request(
                serve_app, "POST", "/admin/reload",
                {"path": "/nonexistent/estimator.json"},
            )
            _, health = await asgi_request(serve_app, "GET", "/healthz")
            ok, _ = await asgi_request(serve_app, "POST", "/predict",
                                       {"model": "alexnet", "gpu": "V100"})
            return status, doc, health, ok

        status, doc, health, ok = asyncio.run(scenario())
        assert status == 422
        assert "cannot load estimator" in doc["error"]
        assert health["generation"] == 1
        assert ok == 200


class TestHotSwapUnderLoad:
    def test_hammering_clients_see_only_consistent_responses(self, serve_app):
        """N concurrent /recommend clients across live reloads: every
        response is a 200 with a coherent generation stamp, nothing
        drops, and traffic demonstrably overlapped the swaps."""
        bodies = [{"model": m, "batch": b}
                  for m in ("alexnet", "resnet_50", "vgg_16")
                  for b in (16, 32)]

        async def scenario():
            stop = asyncio.Event()
            generations = set()
            completed = []
            failures = []

            async def client(idx):
                n = 0
                while not stop.is_set():
                    body = bodies[(idx + n) % len(bodies)]
                    status, doc = await asgi_request(
                        serve_app, "POST", "/recommend", body
                    )
                    if status != 200:
                        failures.append((status, doc))
                    else:
                        generations.add(doc["generation"])
                    n += 1
                    # LRU hits complete without suspending; yield so the
                    # swapper and the other clients get scheduled.
                    await asyncio.sleep(0)
                completed.append(n)

            async def swapper():
                for _ in range(3):
                    await asyncio.sleep(0.02)
                    await serve_app.state.reload()
                stop.set()

            await asyncio.gather(*(client(i) for i in range(8)), swapper())
            return generations, completed, failures

        generations, completed, failures = asyncio.run(scenario())
        assert failures == []
        assert sum(completed) > 0
        assert serve_app.state.holder.generation == 4
        assert len(generations) > 1
        assert generations <= {1, 2, 3, 4}
