"""The response LRU + in-flight coalescing map, in isolation."""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.coalesce import CoalescingCache

from tests.serve.conftest import counter_total


def _cache(maxsize=4):
    return CoalescingCache(maxsize, registry=MetricsRegistry())


class TestLru:
    def test_miss_then_hit(self):
        async def scenario():
            cache = _cache()
            calls = []

            async def compute():
                calls.append(1)
                return "value"

            first = await cache.get_or_compute("k", compute)
            second = await cache.get_or_compute("k", compute)
            return cache, calls, first, second

        cache, calls, first, second = asyncio.run(scenario())
        assert first == second == "value"
        assert calls == [1]
        assert counter_total(cache._registry, "serve.cache") == 2  # miss + hit

    def test_eviction_is_least_recently_used(self):
        async def scenario():
            cache = _cache(maxsize=2)

            async def make(value):
                async def compute():
                    return value
                return compute

            await cache.get_or_compute("a", await make(1))
            await cache.get_or_compute("b", await make(2))
            await cache.get_or_compute("a", await make(1))  # refresh "a"
            await cache.get_or_compute("c", await make(3))  # evicts "b"
            recomputed = []

            async def recompute():
                recomputed.append(1)
                return 2

            await cache.get_or_compute("b", recompute)
            return recomputed

        assert asyncio.run(scenario()) == [1]

    def test_clear_drops_lru_and_reports_count(self):
        async def scenario():
            cache = _cache()

            async def compute():
                return 1

            await cache.get_or_compute("a", compute)
            await cache.get_or_compute("b", compute)
            dropped = cache.clear()
            return dropped, len(cache)

        assert asyncio.run(scenario()) == (2, 0)

    def test_rejects_zero_maxsize(self):
        with pytest.raises(ValueError):
            CoalescingCache(0, registry=MetricsRegistry())


class TestCoalescing:
    def test_concurrent_identical_keys_compute_once(self):
        async def scenario():
            cache = _cache()
            calls = []
            release = asyncio.Event()

            async def compute():
                calls.append(1)
                await release.wait()
                return "shared"

            tasks = [
                asyncio.ensure_future(cache.get_or_compute("k", compute))
                for _ in range(20)
            ]
            await asyncio.sleep(0)  # everyone joins the in-flight future
            release.set()
            results = await asyncio.gather(*tasks)
            return cache, calls, results

        cache, calls, results = asyncio.run(scenario())
        assert calls == [1]
        assert results == ["shared"] * 20
        assert counter_total(cache._registry, "serve.coalesced") == 19
        assert cache.inflight == 0

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            cache = _cache()
            calls = []

            async def make(key):
                async def compute():
                    calls.append(key)
                    return key
                return cache.get_or_compute(key, compute)

            await asyncio.gather(await make("a"), await make("b"))
            return cache, calls

        cache, calls = asyncio.run(scenario())
        assert sorted(calls) == ["a", "b"]
        assert counter_total(cache._registry, "serve.coalesced") == 0

    def test_failures_propagate_and_are_not_cached(self):
        async def scenario():
            cache = _cache()
            attempts = []

            async def boom():
                attempts.append(1)
                raise RuntimeError("lane failure")

            async def fine():
                attempts.append(2)
                return "ok"

            with pytest.raises(RuntimeError):
                await cache.get_or_compute("k", boom)
            # the failure must not poison the key: next caller recomputes
            value = await cache.get_or_compute("k", fine)
            return attempts, value, len(cache)

        attempts, value, entries = asyncio.run(scenario())
        assert attempts == [1, 2]
        assert value == "ok"
        assert entries == 1

    def test_coalesced_waiters_see_the_winners_failure(self):
        async def scenario():
            cache = _cache()
            release = asyncio.Event()

            async def boom():
                await release.wait()
                raise RuntimeError("shared failure")

            tasks = [
                asyncio.ensure_future(cache.get_or_compute("k", boom))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            return results, cache.inflight

        results, inflight = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert inflight == 0
