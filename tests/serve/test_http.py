"""The stdlib HTTP/1.1 server: real sockets, keep-alive, framing errors."""

import asyncio
import json

from repro.serve.http import HttpServer


async def _with_server(app, scenario):
    """Start an ephemeral-port server, run ``scenario(port)``, stop."""
    server = HttpServer(app, host="127.0.0.1", port=0)
    await server.start()
    runner = asyncio.ensure_future(server.run_until_stopped())
    try:
        return await scenario(server.bound_port)
    finally:
        server.request_stop()
        await runner


async def _raw_roundtrip(port, payload):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        return await asyncio.wait_for(reader.read(65536), timeout=10)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _get(path):
    return (f"GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").encode()


def _post(path, body):
    raw = json.dumps(body).encode()
    return (
        f"POST {path} HTTP/1.1\r\nhost: t\r\n"
        f"content-type: application/json\r\n"
        f"content-length: {len(raw)}\r\n\r\n"
    ).encode() + raw


def _parse(response):
    head, _, payload = response.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status = int(lines[0].split(b" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, payload


class TestRoundTrip:
    def test_healthz_over_a_real_socket(self, serve_app):
        async def scenario(port):
            return _parse(await _raw_roundtrip(port, _get("/healthz")))

        status, headers, payload = asyncio.run(
            _with_server(serve_app, scenario)
        )
        assert status == 200
        assert headers[b"content-type"].startswith(b"application/json")
        assert int(headers[b"content-length"]) == len(payload)
        assert json.loads(payload)["generation"] == 1

    def test_predict_post_over_a_real_socket(self, serve_app):
        async def scenario(port):
            raw = await _raw_roundtrip(
                port, _post("/predict", {"model": "alexnet", "gpu": "V100"})
            )
            return _parse(raw)

        status, _, payload = asyncio.run(_with_server(serve_app, scenario))
        assert status == 200
        assert json.loads(payload)["prediction"]["cost_usd"] > 0

    def test_keep_alive_serves_multiple_requests(self, serve_app):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                statuses = []
                for _ in range(3):
                    writer.write(_get("/healthz"))
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    status, headers, _ = _parse(head + b"")
                    length = int(headers[b"content-length"])
                    await reader.readexactly(length)
                    statuses.append(status)
                return statuses
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        assert asyncio.run(_with_server(serve_app, scenario)) == [200] * 3

    def test_connection_close_is_honoured(self, serve_app):
        async def scenario(port):
            raw = await _raw_roundtrip(
                port,
                b"GET /healthz HTTP/1.1\r\nhost: t\r\n"
                b"connection: close\r\n\r\n",
            )
            return _parse(raw)

        status, headers, _ = asyncio.run(_with_server(serve_app, scenario))
        assert status == 200
        assert headers[b"connection"] == b"close"


class TestFraming:
    def test_garbage_request_line_is_400(self, serve_app):
        async def scenario(port):
            return _parse(await _raw_roundtrip(port, b"NOT-HTTP\r\n\r\n"))

        status, _, _ = asyncio.run(_with_server(serve_app, scenario))
        assert status == 400

    def test_http10_defaults_to_connection_close(self, serve_app):
        async def scenario(port):
            raw = await _raw_roundtrip(
                port, b"GET /healthz HTTP/1.0\r\nhost: t\r\n\r\n"
            )
            return _parse(raw)

        status, headers, _ = asyncio.run(_with_server(serve_app, scenario))
        assert status == 200
        assert headers[b"connection"] == b"close"

    def test_unknown_http_version_is_505(self, serve_app):
        async def scenario(port):
            raw = await _raw_roundtrip(
                port, b"GET /healthz HTTP/2.0\r\nhost: t\r\n\r\n"
            )
            return _parse(raw)

        status, _, _ = asyncio.run(_with_server(serve_app, scenario))
        assert status == 505

    def test_chunked_bodies_are_rejected(self, serve_app):
        async def scenario(port):
            raw = await _raw_roundtrip(
                port,
                b"POST /predict HTTP/1.1\r\nhost: t\r\n"
                b"transfer-encoding: chunked\r\n\r\n",
            )
            return _parse(raw)

        status, _, _ = asyncio.run(_with_server(serve_app, scenario))
        assert status in (400, 411, 501)

    def test_oversized_body_is_rejected(self, serve_app):
        async def scenario(port):
            raw = await _raw_roundtrip(
                port,
                b"POST /predict HTTP/1.1\r\nhost: t\r\n"
                b"content-length: 99999999\r\n\r\n" + b"x" * 1024,
            )
            return _parse(raw)

        status, _, _ = asyncio.run(_with_server(serve_app, scenario))
        assert status == 413
