"""Request schemas: strict parsing and canonical fingerprints."""

import pytest

from repro.serve.protocol import (
    DEFAULT_SAMPLES,
    ProtocolError,
    parse_pareto,
    parse_predict,
    parse_recommend,
)


class TestParsePredict:
    def test_minimal_request_fills_defaults(self):
        req = parse_predict({"model": "alexnet", "gpu": "V100"})
        assert req.model == "alexnet"
        assert req.gpu == "V100"
        assert req.gpus == 1
        assert req.batch == 32
        assert req.samples == DEFAULT_SAMPLES
        assert req.epochs == 1
        assert req.pricing == "on-demand"

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_predict([1, 2, 3])

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="model"):
            parse_predict({"gpu": "V100"})

    def test_unknown_field_rejected_by_name(self):
        with pytest.raises(ProtocolError, match="batchsize"):
            parse_predict({"model": "alexnet", "gpu": "V100", "batchsize": 64})

    def test_bool_is_not_an_int(self):
        # JSON has no bool/int pun, but Python does; the parser must not.
        with pytest.raises(ProtocolError, match="batch"):
            parse_predict({"model": "alexnet", "gpu": "V100", "batch": True})

    def test_unknown_pricing_rejected(self):
        with pytest.raises(ProtocolError, match="pricing"):
            parse_predict({"model": "alexnet", "gpu": "V100",
                           "pricing": "free-tier"})


class TestParseRecommend:
    def test_defaults_to_min_cost(self):
        req = parse_recommend({"model": "resnet_50"})
        assert req.objective == "min-cost"
        assert req.budget is None

    def test_budget_objectives_require_budget(self):
        with pytest.raises(ProtocolError, match="budget"):
            parse_recommend({"model": "resnet_50",
                             "objective": "hourly-budget"})
        req = parse_recommend({"model": "resnet_50",
                               "objective": "hourly-budget",
                               "budget": 3.0, "slack": 0.42})
        assert req.budget == 3.0
        assert req.slack == 0.42

    def test_unknown_objective_rejected(self):
        with pytest.raises(ProtocolError, match="objective"):
            parse_recommend({"model": "resnet_50", "objective": "fastest"})


class TestParsePareto:
    def test_batches_default_and_explicit(self):
        assert parse_pareto({"model": "alexnet"}).batches == (32,)
        req = parse_pareto({"model": "alexnet", "batches": [16, 32, 64]})
        assert req.batches == (16, 32, 64)

    def test_bad_batches_rejected(self):
        for bad in ([], [0], [32, 32], ["32"], [True], "32"):
            with pytest.raises(ProtocolError, match="batches"):
                parse_pareto({"model": "alexnet", "batches": bad})


class TestFingerprints:
    def test_identical_requests_share_a_fingerprint(self):
        a = parse_predict({"model": "alexnet", "gpu": "V100", "batch": 64})
        b = parse_predict({"batch": 64, "gpu": "V100", "model": "alexnet"})
        assert a.fingerprint() == b.fingerprint()

    def test_every_field_is_load_bearing(self):
        base = {"model": "alexnet", "gpu": "V100"}
        baseline = parse_predict(base).fingerprint()
        for delta in ({"gpus": 2}, {"batch": 64}, {"samples": 1000},
                      {"epochs": 2}, {"pricing": "spot"}):
            changed = parse_predict({**base, **delta}).fingerprint()
            assert changed != baseline, delta

    def test_endpoints_never_alias(self):
        # Same model, same defaults — still three distinct cache keys.
        fps = {
            parse_predict({"model": "alexnet", "gpu": "V100"}).fingerprint(),
            parse_recommend({"model": "alexnet"}).fingerprint(),
            parse_pareto({"model": "alexnet"}).fingerprint(),
        }
        assert len(fps) == 3

    def test_explicit_defaults_match_implicit(self):
        implicit = parse_recommend({"model": "vgg_16"})
        explicit = parse_recommend({"model": "vgg_16",
                                    "objective": "min-cost",
                                    "batch": 32, "epochs": 1,
                                    "pricing": "on-demand"})
        assert implicit.fingerprint() == explicit.fingerprint()
