"""Snapshot loading, the read-only view, and the atomic holder."""

import pytest

from repro.errors import ModelingError, ServeError
from repro.serve.snapshot import SnapshotHolder, load_snapshot

from tests.serve.conftest import WARM_MODELS


class TestLoadSnapshot:
    def test_loads_and_warms(self, serve_estimator_path):
        snapshot = load_snapshot(
            serve_estimator_path, generation=1, warm=True, models=WARM_MODELS
        )
        assert snapshot.generation == 1
        assert snapshot.source == serve_estimator_path
        assert snapshot.backend == "per_gpu"
        assert snapshot.warm_report is not None
        assert snapshot.warm_report.models == WARM_MODELS
        assert snapshot.warm_report.candidates > 0
        doc = snapshot.to_json()
        assert doc["generation"] == 1
        assert doc["warmed"]["models"] == list(WARM_MODELS)

    def test_cold_load_skips_warm(self, serve_estimator_path):
        snapshot = load_snapshot(serve_estimator_path, generation=1,
                                 warm=False)
        assert snapshot.warm_report is None
        assert "warmed" not in snapshot.to_json()

    def test_missing_file_raises_serve_error(self, tmp_path):
        with pytest.raises(ServeError, match="cannot load estimator"):
            load_snapshot(str(tmp_path / "missing.json"), generation=1)

    def test_corrupt_file_raises_serve_error(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ServeError, match="cannot load estimator"):
            load_snapshot(str(path), generation=1)

    def test_estimator_view_is_read_only(self, serve_estimator_path):
        snapshot = load_snapshot(serve_estimator_path, generation=1,
                                 warm=False)
        with pytest.raises(ModelingError, match="read-only"):
            snapshot.estimator.heavy_only = True
        with pytest.raises(ModelingError, match="read-only"):
            del snapshot.estimator.heavy_only
        # reads still delegate to the wrapped estimator
        assert snapshot.estimator.heavy_only is snapshot.estimator.wrapped.heavy_only

    def test_plan_is_shared_per_shape(self, serve_estimator_path):
        from repro.cloud.pricing import ON_DEMAND

        snapshot = load_snapshot(serve_estimator_path, generation=1,
                                 warm=False)
        a = snapshot.plan_for((32,), "on-demand", ON_DEMAND)
        b = snapshot.plan_for((32,), "on-demand", ON_DEMAND)
        c = snapshot.plan_for((16, 32), "on-demand", ON_DEMAND)
        assert a is b
        assert c is not a


class TestSnapshotHolder:
    def test_swap_installs_newer_generation(self, serve_estimator_path):
        first = load_snapshot(serve_estimator_path, generation=1, warm=False)
        second = load_snapshot(serve_estimator_path, generation=2, warm=False)
        holder = SnapshotHolder(first)
        old = holder.swap(second)
        assert old is first
        assert holder.current is second
        assert holder.generation == 2

    def test_stale_swap_rejected(self, serve_estimator_path):
        first = load_snapshot(serve_estimator_path, generation=1, warm=False)
        second = load_snapshot(serve_estimator_path, generation=2, warm=False)
        holder = SnapshotHolder(second)
        with pytest.raises(ServeError, match="stale snapshot swap"):
            holder.swap(first)
        same = load_snapshot(serve_estimator_path, generation=2, warm=False)
        with pytest.raises(ServeError, match="stale snapshot swap"):
            holder.swap(same)
        assert holder.current is second
