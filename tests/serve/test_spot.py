"""Spot scenario over the serving app: ticks, re-ranking, consistency."""

from __future__ import annotations

import asyncio

import pytest

from tests.serve.conftest import asgi_request, counter_total, request

SPOT_BODY = {"model": "alexnet", "batch": 32, "scenario": "spot"}


class TestSpotRecommend:
    def test_spot_recommendation_shape(self, serve_app):
        status, doc = request(serve_app, "POST", "/recommend", SPOT_BODY)
        assert status == 200
        assert doc["scenario"] == "spot"
        assert doc["objective"] == "spot-risk"
        assert doc["spot_generation"] == 0
        assert doc["n_candidates"] > 0
        best = doc["best"]
        assert best["instance"].startswith("spot:")
        assert "expected_cost_usd" in best
        assert "expected_makespan_hours" in best
        assert "hazard_per_hr" in best
        assert len(doc["runners_up"]) > 0

    def test_risk_aversion_echoed_and_applied(self, serve_app):
        _, neutral = request(serve_app, "POST", "/recommend", SPOT_BODY)
        _, averse = request(
            serve_app, "POST", "/recommend",
            {**SPOT_BODY, "risk_aversion": 50.0},
        )
        assert neutral["risk_aversion"] == 0.0
        assert averse["risk_aversion"] == 50.0
        # A huge λ pushes the winner toward min-makespan.
        assert (averse["best"]["expected_makespan_hours"]
                <= neutral["best"]["expected_makespan_hours"])

    def test_static_requests_untouched(self, serve_app):
        status, doc = request(
            serve_app, "POST", "/recommend", {"model": "alexnet", "batch": 32}
        )
        assert status == 200
        assert "scenario" not in doc
        assert "hazard_per_hr" not in doc["best"]

    def test_identical_spot_burst_coalesces(self, serve_app):
        async def burst():
            return await asyncio.gather(*(
                asgi_request(serve_app, "POST", "/recommend", SPOT_BODY)
                for _ in range(6)
            ))

        results = asyncio.run(burst())
        assert all(status == 200 for status, _ in results)
        docs = [doc for _, doc in results]
        assert all(doc == docs[0] for doc in docs)
        # One evaluation served the whole burst; the rest coalesced.
        assert counter_total(serve_app.state.registry, "serve.coalesced") == 5


class TestSpotTick:
    def test_tick_advances_generation(self, serve_app):
        status, before = request(serve_app, "GET", "/healthz")
        assert status == 200 and before["spot_generation"] == 0
        status, doc = request(serve_app, "POST", "/spot/tick")
        assert status == 200
        assert doc["status"] == "ticked"
        assert doc["spot_generation"] == 1
        assert doc["ratios"] == dict(sorted(
            serve_app.state.spot.trace.ratios_at(1).items()
        ))
        _, after = request(serve_app, "GET", "/healthz")
        assert after["spot_generation"] == 1

    def test_tick_changes_the_recommendation_prices(self, serve_app):
        _, first = request(serve_app, "POST", "/recommend", SPOT_BODY)
        request(serve_app, "POST", "/spot/tick")
        _, second = request(serve_app, "POST", "/recommend", SPOT_BODY)
        assert first["spot_generation"] == 0
        assert second["spot_generation"] == 1
        assert first["ratios"] != second["ratios"]

    def test_tick_rejects_payload(self, serve_app):
        status, doc = request(
            serve_app, "POST", "/spot/tick", {"generation": 3}
        )
        assert status == 400
        assert "empty body" in doc["error"]

    def test_ticks_counter_increments(self, serve_app):
        # spot.* counters are process-wide instruments on the default
        # registry (the market is not per-snapshot state), so assert on
        # the delta rather than an absolute count.
        from repro.obs.metrics import default_registry

        before = counter_total(default_registry(), "spot.ticks")
        request(serve_app, "POST", "/spot/tick")
        request(serve_app, "POST", "/spot/tick")
        assert counter_total(default_registry(), "spot.ticks") == before + 2


class TestSpotProtocolErrors:
    @pytest.mark.parametrize("extra", [
        {"pricing": "spot"},
        {"objective": "min-time"},
        {"budget": 3.0},
        {"slack": 0.1},
    ])
    def test_spot_conflicts_rejected(self, serve_app, extra):
        status, doc = request(
            serve_app, "POST", "/recommend", {**SPOT_BODY, **extra}
        )
        assert status == 400
        assert "conflict with scenario 'spot'" in doc["error"]

    def test_unknown_scenario_rejected(self, serve_app):
        status, doc = request(
            serve_app, "POST", "/recommend",
            {"model": "alexnet", "batch": 32, "scenario": "futures"},
        )
        assert status == 400
        assert "scenario" in doc["error"]

    def test_risk_aversion_requires_spot(self, serve_app):
        status, doc = request(
            serve_app, "POST", "/recommend",
            {"model": "alexnet", "batch": 32, "risk_aversion": 1.0},
        )
        assert status == 400
        assert "risk_aversion" in doc["error"]

    def test_negative_risk_aversion_rejected(self, serve_app):
        status, doc = request(
            serve_app, "POST", "/recommend",
            {**SPOT_BODY, "risk_aversion": -0.5},
        )
        assert status == 400
        assert "risk_aversion" in doc["error"]


class TestHotTickUnderLoad:
    def test_no_stale_generation_rankings(self, serve_app):
        """N concurrent spot clients across live ticks: every response is
        a 200 whose quoted ratios are exactly the trace row of its own
        spot_generation — a tick racing an evaluation never yields a
        ranking that mixes two generations' prices."""
        trace = serve_app.state.spot.trace

        async def scenario():
            stop = asyncio.Event()
            observed = set()
            completed = []
            failures = []

            async def client(idx):
                n = 0
                bodies = [SPOT_BODY, {**SPOT_BODY, "risk_aversion": 1.0}]
                while not stop.is_set():
                    status, doc = await asgi_request(
                        serve_app, "POST", "/recommend",
                        bodies[(idx + n) % len(bodies)],
                    )
                    if status != 200:
                        failures.append((status, doc))
                    else:
                        generation = doc["spot_generation"]
                        observed.add(generation)
                        expected = dict(sorted(trace.ratios_at(
                            generation % trace.n_ticks
                        ).items()))
                        if doc["ratios"] != expected:
                            failures.append(("stale", generation, doc))
                    n += 1
                    await asyncio.sleep(0)
                completed.append(n)

            async def ticker():
                for _ in range(5):
                    await asyncio.sleep(0.01)
                    status, _ = await asgi_request(
                        serve_app, "POST", "/spot/tick"
                    )
                    assert status == 200
                stop.set()

            await asyncio.gather(*(client(i) for i in range(6)), ticker())
            return observed, completed, failures

        observed, completed, failures = asyncio.run(scenario())
        assert not failures
        assert all(n > 0 for n in completed)
        # Traffic demonstrably spanned multiple price generations.
        assert len(observed) >= 2
        assert serve_app.state.spot.generation == 5
