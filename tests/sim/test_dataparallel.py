"""Tests for the data-parallel communication/synchronisation ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.sim.dataparallel import (
    comm_overhead_base_us,
    h_factor,
    k_factor,
    sample_comm_overhead_us,
    straggler_sigma,
)


class TestFactors:
    def test_identity_at_one_gpu(self):
        assert h_factor(1) == 1.0 and k_factor(1) == 1.0

    def test_monotone_in_gpu_count(self):
        for k in range(1, 8):
            assert h_factor(k + 1) > h_factor(k)
            assert k_factor(k + 1) > k_factor(k)

    def test_extrapolation_beyond_four(self):
        assert h_factor(6) == h_factor(4) + 2 * 4.0
        assert k_factor(6) == k_factor(4) + 2 * 1.0

    def test_rejects_bad_counts(self):
        with pytest.raises(HardwareError):
            h_factor(0)
        with pytest.raises(HardwareError):
            k_factor(0)

    def test_straggler_sigma_grows(self):
        assert straggler_sigma(4) > straggler_sigma(1)


class TestOverhead:
    def test_linear_in_parameters_for_fixed_k(self):
        """The Fig. 7 property: S is exactly affine in P per (GPU, k)."""
        s1 = comm_overhead_base_us("V100", 2, 10_000_000)
        s2 = comm_overhead_base_us("V100", 2, 20_000_000)
        s3 = comm_overhead_base_us("V100", 2, 30_000_000)
        assert (s3 - s2) == pytest.approx(s2 - s1)

    def test_grows_with_gpu_count(self):
        overheads = [comm_overhead_base_us("T4", k, 25_000_000) for k in (1, 2, 3, 4)]
        assert overheads == sorted(overheads)

    def test_variable_count_adds_cost(self):
        plain = comm_overhead_base_us("T4", 2, 25_000_000, num_variables=0)
        tensor_heavy = comm_overhead_base_us("T4", 2, 25_000_000, num_variables=500)
        assert tensor_heavy > plain

    def test_positive_at_one_gpu(self):
        """Even single-GPU training pays CPU<->GPU communication
        (Section IV-A)."""
        assert comm_overhead_base_us("V100", 1, 1_000_000) > 0

    def test_slower_devices_pay_more(self):
        fast = comm_overhead_base_us("V100", 2, 50_000_000)
        slow = comm_overhead_base_us("K80", 2, 50_000_000)
        assert slow > fast


class TestSampling:
    def test_deterministic(self):
        a = sample_comm_overhead_us("V100", 2, 10_000_000, 100)
        b = sample_comm_overhead_us("V100", 2, 10_000_000, 100)
        np.testing.assert_array_equal(a, b)

    def test_mean_near_base(self):
        base = comm_overhead_base_us("V100", 2, 10_000_000)
        samples = sample_comm_overhead_us("V100", 2, 10_000_000, 50_000)
        assert abs(samples.mean() - base) / base < 0.02

    def test_more_gpus_more_variance(self):
        s1 = sample_comm_overhead_us("V100", 1, 10_000_000, 5000)
        s4 = sample_comm_overhead_us("V100", 4, 10_000_000, 5000)
        assert s4.std() / s4.mean() > s1.std() / s1.mean()

    @settings(max_examples=20)
    @given(st.integers(1, 8), st.integers(1_000_000, 200_000_000))
    def test_samples_always_positive(self, k, params):
        samples = sample_comm_overhead_us("M60", k, params, 50)
        assert (samples > 0).all()
