"""Tests for the single-device execution simulator."""

import pytest

from repro.errors import ProfilingError
from repro.graph.ops import Device
from repro.sim.executor import run_iterations
from repro.sim.trace import OpTiming


class TestRunIterations:
    def test_one_timing_per_op(self, tiny_graph):
        profile = run_iterations(tiny_graph, "V100", 50)
        assert len(profile.timings) == len(tiny_graph)
        names = {t.op_name for t in profile.timings}
        assert names == {op.name for op in tiny_graph}

    def test_metadata_propagated(self, tiny_graph):
        profile = run_iterations(tiny_graph, "V100", 50)
        assert profile.model == "tiny"
        assert profile.gpu_key == "V100"
        assert profile.num_parameters == tiny_graph.num_parameters
        assert profile.n_iterations == 50

    def test_family_name_normalised(self, tiny_graph):
        profile = run_iterations(tiny_graph, "P2", 10)
        assert profile.gpu_key == "K80"

    def test_deterministic(self, tiny_graph):
        a = run_iterations(tiny_graph, "T4", 30)
        b = run_iterations(tiny_graph, "T4", 30)
        assert [t.mean_us for t in a.timings] == [t.mean_us for t in b.timings]

    def test_seed_context_gives_independent_run(self, tiny_graph):
        a = run_iterations(tiny_graph, "T4", 30, "run-a")
        b = run_iterations(tiny_graph, "T4", 30, "run-b")
        assert [t.mean_us for t in a.timings] != [t.mean_us for t in b.timings]

    def test_requires_two_iterations(self, tiny_graph):
        with pytest.raises(ProfilingError):
            run_iterations(tiny_graph, "V100", 1)

    def test_compute_us_decomposes_by_device(self, tiny_graph):
        profile = run_iterations(tiny_graph, "V100", 30)
        assert profile.compute_us == pytest.approx(
            profile.gpu_compute_us + profile.cpu_compute_us
        )
        assert profile.gpu_compute_us > 0 and profile.cpu_compute_us > 0

    def test_gpu_ranking_on_whole_model(self):
        """On a real (large-kernel) model the ranking is the paper's:
        P3 < G4 < G3 < P2. (Tiny toy graphs are launch-bound and need not
        rank this way — that is the utilization effect behind Fig. 9.)"""
        from repro.models import build_model

        graph = build_model("vgg_11", batch_size=8)
        totals = {
            g: run_iterations(graph, g, 30).gpu_compute_us
            for g in ("V100", "K80", "T4", "M60")
        }
        assert totals["V100"] < totals["T4"] < totals["M60"] < totals["K80"]


class TestOpTiming:
    def test_from_samples_statistics(self, tiny_graph):
        import numpy as np

        op = tiny_graph.operations[10]
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        t = OpTiming.from_samples(op, "V100", samples)
        assert t.mean_us == pytest.approx(2.5)
        assert t.median_us == pytest.approx(2.5)
        assert t.min_us == 1.0 and t.max_us == 4.0
        assert t.n_samples == 4
        assert t.normalized_std == pytest.approx(t.std_us / 2.5)

    def test_device_recorded(self, tiny_graph):
        profile = run_iterations(tiny_graph, "V100", 10)
        devices = {t.device for t in profile.timings}
        assert devices == {Device.GPU.value, Device.CPU.value}
