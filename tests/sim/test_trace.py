"""Tests for trace record arithmetic (OpTiming / TrainingMeasurement)."""

import numpy as np
import pytest

from repro.sim.trace import OpTiming, TrainingMeasurement


class TestTrainingMeasurement:
    def _measurement(self, **overrides):
        defaults = dict(
            model="m", gpu_key="V100", num_gpus=2, instance_name="i",
            usd_per_hr=3.6, batch_size=32,
            compute_us_per_iteration=900.0, comm_overhead_us=100.0,
            iterations=3_600_000.0,
        )
        defaults.update(overrides)
        return TrainingMeasurement(**defaults)

    def test_per_iteration_sum(self):
        assert self._measurement().per_iteration_us == 1000.0

    def test_total_time_chain(self):
        m = self._measurement()
        assert m.total_us == pytest.approx(3.6e9)
        assert m.total_hours == pytest.approx(1.0)

    def test_cost(self):
        assert self._measurement().cost_dollars == pytest.approx(3.6)

    def test_zero_comm_allowed(self):
        m = self._measurement(comm_overhead_us=0.0)
        assert m.per_iteration_us == 900.0


class TestOpTimingStats:
    def test_normalized_std_zero_mean_safe(self, tiny_graph):
        op = tiny_graph.operations[0]
        timing = OpTiming.from_samples(op, "V100", np.array([0.0, 0.0]))
        assert timing.normalized_std == 0.0

    def test_percentile_fields_ordered(self, tiny_graph):
        op = tiny_graph.operations[5]
        samples = np.random.default_rng(0).uniform(1, 100, 500)
        t = OpTiming.from_samples(op, "K80", samples)
        assert t.min_us <= t.median_us <= t.max_us
        assert t.n_samples == 500

    def test_bytes_copied_from_op(self, tiny_graph):
        op = tiny_graph.operations[7]
        t = OpTiming.from_samples(op, "T4", np.array([1.0, 2.0]))
        assert t.input_bytes == op.input_bytes
        assert t.output_bytes == op.output_bytes
