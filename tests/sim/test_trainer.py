"""Tests for end-to-end simulated training measurements."""

import pytest

from repro.cloud.pricing import MARKET_RATIO
from repro.sim.trainer import measure_training
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=4)


class TestMeasureTraining:
    def test_accepts_graph_object(self, tiny_graph):
        m = measure_training(tiny_graph, "V100", 1, JOB, n_profile_iterations=20)
        assert m.model == "tiny"
        assert m.iterations == 6400 / 4

    def test_time_decomposition(self, tiny_graph):
        m = measure_training(tiny_graph, "V100", 2, JOB, n_profile_iterations=20)
        assert m.per_iteration_us == pytest.approx(
            m.compute_us_per_iteration + m.comm_overhead_us
        )
        assert m.total_us == pytest.approx(m.per_iteration_us * m.iterations)

    def test_cost_accounting(self, tiny_graph):
        m = measure_training(tiny_graph, "V100", 1, JOB, n_profile_iterations=20)
        assert m.usd_per_hr == 3.06
        assert m.cost_dollars == pytest.approx(m.total_hours * 3.06)

    def test_multi_gpu_fewer_iterations_more_comm(self, tiny_graph):
        m1 = measure_training(tiny_graph, "T4", 1, JOB, n_profile_iterations=20)
        m4 = measure_training(tiny_graph, "T4", 4, JOB, n_profile_iterations=20)
        assert m4.iterations == m1.iterations / 4
        assert m4.comm_overhead_us > m1.comm_overhead_us

    def test_multi_gpu_net_win_for_real_model(self):
        """For a real CNN, 4 GPUs still beat 1 despite sync overhead
        (Fig. 6); a toy graph's compute is too small to amortise the sync."""
        job = TrainingJob(IMAGENET_6400, batch_size=32)
        m1 = measure_training("inception_v1", "T4", 1, job, n_profile_iterations=20)
        m4 = measure_training("inception_v1", "T4", 4, job, n_profile_iterations=20)
        assert m4.total_us < m1.total_us

    def test_pricing_scheme_respected(self, tiny_graph):
        aws = measure_training(tiny_graph, "K80", 1, JOB, n_profile_iterations=20)
        market = measure_training(
            tiny_graph, "K80", 1, JOB, pricing=MARKET_RATIO, n_profile_iterations=20
        )
        assert market.total_us == pytest.approx(aws.total_us)
        assert market.cost_dollars < aws.cost_dollars

    def test_zoo_model_by_name(self):
        m = measure_training(
            "inception_v1", "V100", 1,
            TrainingJob(IMAGENET_6400, batch_size=32), n_profile_iterations=20,
        )
        assert m.model == "inception_v1"
        assert m.iterations == 200

    def test_deterministic_given_seed(self, tiny_graph):
        a = measure_training(tiny_graph, "M60", 2, JOB, n_profile_iterations=20,
                             seed_context="s")
        b = measure_training(tiny_graph, "M60", 2, JOB, n_profile_iterations=20,
                             seed_context="s")
        assert a.total_us == b.total_us
