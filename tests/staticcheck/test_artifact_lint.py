"""Artifact-routing lint: no lru_cache on workspace-owned artifact types."""

from __future__ import annotations

from repro.staticcheck import check_source
from repro.staticcheck.artifact_lint import RULE_ARTIFACT


def rules_of(source: str, path: str):
    return [f.rule for f in check_source(source, path)]


LRU_PROFILE = (
    "from functools import lru_cache\n"
    "from repro.profiling.records import ProfileDataset\n"
    "@lru_cache(maxsize=None)\n"
    "def training_profiles(n: int) -> ProfileDataset:\n"
    "    ...\n"
)


def test_lru_cache_on_profile_dataset_is_flagged():
    assert rules_of(LRU_PROFILE, "src/repro/experiments/common.py") == [
        RULE_ARTIFACT
    ]


def test_functools_qualified_cache_is_flagged():
    src = (
        "import functools\n"
        "from repro.core.fit import FittedCeer\n"
        "@functools.cache\n"
        "def fitted(n: int) -> FittedCeer:\n"
        "    ...\n"
    )
    assert rules_of(src, "src/repro/experiments/common.py") == [RULE_ARTIFACT]


def test_optional_and_string_annotations_are_flagged():
    optional = (
        "from functools import lru_cache\n"
        "from typing import Optional\n"
        "from repro.sim.trace import TrainingMeasurement\n"
        "@lru_cache\n"
        "def observed(k: int) -> Optional[TrainingMeasurement]:\n"
        "    ...\n"
    )
    stringly = (
        "from functools import lru_cache\n"
        "@lru_cache\n"
        "def observed(k: int) -> 'TrainingMeasurement':\n"
        "    ...\n"
    )
    assert rules_of(optional, "src/repro/sim/helpers.py") == [RULE_ARTIFACT]
    assert rules_of(stringly, "src/repro/sim/helpers.py") == [RULE_ARTIFACT]


def test_non_artifact_return_types_are_fine():
    src = (
        "from functools import lru_cache\n"
        "@lru_cache(maxsize=32)\n"
        "def feature_schema(op_type: str) -> tuple:\n"
        "    ...\n"
    )
    assert rules_of(src, "src/repro/profiling/features.py") == []


def test_unannotated_functions_are_not_guessed_at():
    src = (
        "from functools import lru_cache\n"
        "@lru_cache\n"
        "def training_profiles(n):\n"
        "    ...\n"
    )
    assert rules_of(src, "src/repro/experiments/common.py") == []


def test_artifacts_package_tests_and_benchmarks_are_exempt():
    for path in (
        "src/repro/artifacts/workspace.py",
        "tests/experiments/test_common.py",
        "benchmarks/conftest.py",
    ):
        assert rules_of(LRU_PROFILE, path) == []


def test_pragma_suppresses():
    src = (
        "from functools import lru_cache\n"
        "from repro.profiling.records import ProfileDataset\n"
        "@lru_cache  # staticcheck: ignore[artifact-routing]\n"
        "def training_profiles(n: int) -> ProfileDataset:\n"
        "    ...\n"
    )
    assert rules_of(src, "src/repro/experiments/common.py") == []
