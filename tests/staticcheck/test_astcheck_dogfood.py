"""Injected-violation dogfood: the AST rules catch bugs planted in the
*real* shipped sources, not just in synthetic fixtures. Each test takes a
file the tree actually ships, plants one representative defect, and
asserts the matching rule fires (and that the unmodified source is clean
— the injection is the only delta)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.staticcheck import check_source

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def inject(path: Path, old: str, new: str) -> str:
    source = path.read_text()
    assert old in source, f"anchor drifted in {path}"
    return source.replace(old, new, 1)


def rules_of(findings):
    return sorted({f.rule for f in findings})


def test_axis_dropping_reduction_in_batch_py():
    path = SRC / "core" / "batch.py"
    assert check_source(
        path.read_text(), "src/repro/core/batch.py",
        rules=["axis-drop", "axis-broadcast", "nan-mask"],
    ) == []
    bad = inject(
        path,
        "        total_hr = us_to_hr(total_us)  # axes: (G, K, B)",
        "        total_hr = us_to_hr(total_us)  # axes: (G, K, B)\n"
        "        worst_us = total_us.sum(axis=3)",
    )
    findings = check_source(bad, "src/repro/core/batch.py",
                            rules=["axis-drop"])
    assert rules_of(findings) == ["axis-drop"]
    assert "out of range" in findings[0].message


def test_nan_unaware_min_over_cost_tensor_in_batch_py():
    path = SRC / "core" / "batch.py"
    bad = inject(
        path,
        "    registry = default_registry()",
        "    cheapest = cost_usd.min()\n    registry = default_registry()",
    )
    findings = check_source(bad, "src/repro/core/batch.py",
                            rules=["nan-mask"])
    assert rules_of(findings) == ["nan-mask"]


def test_lambda_field_on_real_fanout_task():
    path = SRC / "staticcheck" / "runner.py"
    assert check_source(path.read_text(), "src/repro/staticcheck/runner.py",
                        rules=["fork-safety"]) == []
    bad = inject(
        path,
        "class CheckFileTask:",
        "class CheckFileTask:\n    on_done = lambda self: None",
    )
    findings = check_source(bad, "src/repro/staticcheck/runner.py",
                            rules=["fork-safety"])
    assert rules_of(findings) == ["fork-safety"]
    assert any("lambda" in f.message for f in findings)


def test_clock_in_real_spec_builder():
    path = SRC / "cli.py"
    assert check_source(path.read_text(), "src/repro/cli.py",
                        rules=["fingerprint-purity"]) == []
    bad = inject(
        path,
        '        "iterations": iterations,',
        '        "iterations": iterations,\n        "at": time.time(),',
    )
    findings = check_source(bad, "src/repro/cli.py",
                            rules=["fingerprint-purity"])
    assert rules_of(findings) == ["fingerprint-purity"]
    assert "_canonical_profile_spec" in findings[0].message


def test_unregistered_span_in_batch_py():
    path = SRC / "core" / "batch.py"
    assert check_source(path.read_text(), "src/repro/core/batch.py",
                        rules=["obs-name", "obs-warm"]) == []
    bad = inject(path, 'with span(\n        "batch.sweep",',
                 'with span(\n        "batch.sweeep",')
    findings = check_source(bad, "src/repro/core/batch.py",
                            rules=["obs-name"])
    assert rules_of(findings) == ["obs-name"]
    assert "batch.sweeep" in findings[0].message


def test_span_planted_on_warm_kernel_in_batch_py():
    path = SRC / "core" / "batch.py"
    bad = inject(
        path,
        "    totals_us = np.zeros(len(gpu_keys))  # axes: (G)",
        '    with span("batch.sweep"):\n        pass\n'
        "    totals_us = np.zeros(len(gpu_keys))  # axes: (G)",
    )
    findings = check_source(bad, "src/repro/core/batch.py",
                            rules=["obs-warm"])
    assert rules_of(findings) == ["obs-warm"]
    assert "evaluate_compiled_batch_us" in findings[0].symbol


@pytest.mark.parametrize("marker_file", [
    SRC / "core" / "batch.py",
    SRC / "core" / "engine.py",
    SRC / "core" / "pareto.py",
])
def test_shipped_warm_markers_hold(marker_file):
    # every # obs: warm marker in the tree is currently honoured
    rel = str(marker_file.relative_to(REPO_ROOT))
    assert "# obs: warm" in marker_file.read_text()
    assert check_source(marker_file.read_text(), rel,
                        rules=["obs-warm"]) == []
