"""astcheck axes rules: named-axis dataflow fixtures (TP and FP)."""

from __future__ import annotations

import pytest

from repro.staticcheck import check_source
from repro.staticcheck.astcheck.analysis import parse_axis_comment

NP = "import numpy as np\n"
AXES_RULES = ("axis-drop", "axis-broadcast", "nan-mask")


def axes(src, rules=AXES_RULES):
    return check_source(NP + src, "fixture.py", rules=list(rules))


# -- true positives -----------------------------------------------------

def test_reduction_axis_out_of_range():
    findings = axes(
        "grid = np.zeros((3, 4))  # axes: (G, B)\n"
        "out = grid.sum(axis=2)\n"
    )
    assert [f.rule for f in findings] == ["axis-drop"]
    assert "out of range" in findings[0].message


def test_np_form_reduction_axis_out_of_range():
    findings = axes(
        "grid = np.zeros((3, 4))  # axes: (G, B)\n"
        "out = np.sum(grid, axis=3)\n"
    )
    assert [f.rule for f in findings] == ["axis-drop"]


def test_misaligned_broadcast():
    findings = axes(
        "a = np.zeros((3, 4))  # axes: (G, K)\n"
        "b = np.zeros((4, 5))  # axes: (K, B)\n"
        "c = a + b\n"
    )
    assert [f.rule for f in findings] == ["axis-broadcast"]
    assert "'G' with 'K'" in findings[0].message


def test_nan_masked_reduction():
    findings = axes(
        "rate = np.zeros((3, 4))  # axes: (P, G) nan\n"
        "low = rate.min()\n"
    )
    assert [f.rule for f in findings] == ["nan-mask"]
    assert "nanmin" in findings[0].fix_hint


def test_builtin_min_over_nan_array():
    findings = axes(
        "rate = np.zeros((3, 4))  # axes: (P, G) nan\n"
        "low = min(rate)\n"
    )
    assert [f.rule for f in findings] == ["nan-mask"]


def test_annotation_disagrees_with_expression():
    findings = axes(
        "a = np.zeros((3, 4))  # axes: (G, B)\n"
        "b = a.sum(axis=0)  # axes: (G, B)\n"
    )
    assert [f.rule for f in findings] == ["axis-drop"]
    assert "annotated" in findings[0].message


def test_subscript_consumes_too_many_axes():
    findings = axes(
        "a = np.zeros((3, 4))  # axes: (G, B)\n"
        "v = a[0, 0, 0]\n"
    )
    assert [f.rule for f in findings] == ["axis-drop"]


# -- false-positive controls (all must stay silent) ---------------------

def test_unannotated_arrays_stay_silent():
    # unknown specs never speculate — even an absurd axis is not flagged
    findings = axes(
        "mystery = make_something()\n"
        "out = mystery.sum(axis=9)\n"
    )
    assert findings == []


def test_nan_aware_reduction_is_clean():
    findings = axes(
        "rate = np.zeros((3, 4))  # axes: (P, G) nan\n"
        "low = np.nanmin(rate)\n"
    )
    assert findings == []


def test_nan_to_num_clears_the_mask():
    findings = axes(
        "rate = np.zeros((3, 4))  # axes: (P, G) nan\n"
        "filled = np.nan_to_num(rate)\n"
        "low = filled.min()\n"
    )
    assert findings == []


def test_inserted_axes_broadcast_cleanly():
    # the sweep's own (G,1,B)+(G,K,1) assembly shape
    findings = axes(
        "a = np.zeros((3, 5))  # axes: (G, B)\n"
        "b = np.zeros((3, 4))  # axes: (G, K)\n"
        "c = a[:, None, :] + b[:, :, None]  # axes: (G, K, B)\n"
    )
    assert findings == []


def test_valid_reduction_and_negative_axis():
    findings = axes(
        "a = np.zeros((3, 4))  # axes: (G, B)\n"
        "s0 = a.sum(axis=0)\n"
        "s1 = a.sum(axis=-1)  # axes: (G)\n"
        "k = a.sum(axis=1, keepdims=True)  # axes: (G, 1)\n"
        "norm = a / k\n"
    )
    assert findings == []


def test_unit_converters_pass_specs_through():
    findings = axes(
        "t_us = np.zeros((3, 4))  # axes: (G, B)\n"
        "t_hr = us_to_hr(t_us)  # axes: (G, B)\n"
    )
    assert findings == []


# -- annotation parser --------------------------------------------------

@pytest.mark.parametrize("comment,axes_tuple,nan", [
    ("# axes: (G, K, B)", ("G", "K", "B"), False),
    ("# axes: (P, G, K) nan", ("P", "G", "K"), True),
    ("# axes: (G)", ("G",), False),
    ("#axes:(G,B)", ("G", "B"), False),
])
def test_parse_axis_comment(comment, axes_tuple, nan):
    spec = parse_axis_comment(comment)
    assert spec is not None
    assert spec.axes == axes_tuple
    assert spec.nan is nan


def test_parse_axis_comment_rejects_non_annotations():
    assert parse_axis_comment("# plain comment") is None
    assert parse_axis_comment("# shapes: (G, B)") is None
