"""Baseline files: load/write round-trip, grandfathering, staleness."""

from __future__ import annotations

import json

import pytest

from repro.staticcheck import Finding, load_baseline, write_baseline
from repro.staticcheck.baseline import BaselineError


def finding(rule="unit-suffix", path="src/repro/x.py", symbol="train_time",
            line=3):
    return Finding(path=path, line=line, col=0, rule=rule,
                   message=f"{symbol} lacks a unit suffix", symbol=symbol)


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = load_baseline(tmp_path / "absent.json")
    assert baseline.fingerprints == frozenset()
    new, old = baseline.split([finding()])
    assert len(new) == 1 and old == []


def test_write_then_load_round_trips(tmp_path):
    path = tmp_path / "baseline.json"
    f = finding()
    write_baseline(path, [f])
    baseline = load_baseline(path)
    assert f.fingerprint in baseline.fingerprints
    new, old = baseline.split([f])
    assert new == [] and old == [f]


def test_fingerprint_ignores_line_numbers(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [finding(line=3)])
    baseline = load_baseline(path)
    moved = finding(line=300)  # same defect, edited file above it
    new, old = baseline.split([moved])
    assert new == [] and old == [moved]


def test_stale_entries_are_reported(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [finding(symbol="paid_down")])
    baseline = load_baseline(path)
    assert baseline.stale_entries([]) == [finding(symbol="paid_down").fingerprint]


def test_v1_baseline_still_loads(tmp_path):
    path = tmp_path / "baseline.json"
    f = finding()
    path.write_text(json.dumps({"version": 1, "fingerprints": [f.fingerprint]}))
    baseline = load_baseline(path)
    assert f.fingerprint in baseline.fingerprints
    assert baseline.entries == {}  # v1 carries no metadata
    new, old = baseline.split([f])
    assert new == [] and old == [f]


def test_write_baseline_emits_v2_entries(tmp_path):
    path = tmp_path / "baseline.json"
    f = Finding(path="src/repro/x.py", line=7, col=0, rule="axis-drop",
                message="sum over bad axis", symbol="total_us", family="axes")
    write_baseline(path, [f, f])  # duplicates collapse to one entry
    payload = json.loads(path.read_text())
    assert payload["version"] == 2
    assert payload["entries"] == [
        {"fingerprint": f.fingerprint, "rule": "axis-drop", "family": "axes"}
    ]
    baseline = load_baseline(path)
    assert baseline.entries[f.fingerprint] == {"rule": "axis-drop",
                                               "family": "axes"}


def test_v2_entries_are_sorted_and_line_free(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [finding(symbol="zz", line=90),
                          finding(symbol="aa", line=5)])
    payload = json.loads(path.read_text())
    fps = [e["fingerprint"] for e in payload["entries"]]
    assert fps == sorted(fps)
    assert not any(":5" in fp or ":90" in fp for fp in fps)


def test_malformed_v2_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 2, "entries": "oops"}))
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(json.dumps({"version": 2, "entries": [{"rule": "x"}]}))
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(json.dumps({"version": 3, "entries": []}))
    with pytest.raises(BaselineError):
        load_baseline(path)


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("not json")
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(json.dumps({"fingerprints": "oops"}))
    with pytest.raises(BaselineError):
        load_baseline(path)
    path.write_text(json.dumps({"fingerprints": [1, 2]}))
    with pytest.raises(BaselineError):
        load_baseline(path)
