"""tools/check.py: exit codes, text/JSON output, baseline workflow."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = (
    "import random\n"
    "train_time = random.random()\n"
    "ms = total_us / 1e3\n"
)
CLEAN = (
    "from repro.units import us_to_ms\n"
    "total_us = 5.0\n"
    "total_ms = us_to_ms(total_us)\n"
)


@pytest.fixture(scope="module")
def check():
    spec = importlib.util.spec_from_file_location(
        "repro_check_cli", REPO_ROOT / "tools" / "check.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run(check, capsys, *argv):
    code = check.main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_clean_file_exits_zero(check, capsys, tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    code, out, _ = run(check, capsys, str(target), "--no-contract")
    assert code == 0
    assert "0 finding(s)" in out


def test_dirty_file_exits_one_and_reports_each_rule(check, capsys, tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    code, out, _ = run(check, capsys, str(target), "--no-contract")
    assert code == 1
    for rule in ("unit-suffix", "unit-literal", "determinism"):
        assert rule in out, rule


def test_json_output_matches_documented_schema(check, capsys, tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    code, out, _ = run(check, capsys, str(target), "--no-contract", "--json")
    assert code == 1
    payload = json.loads(out)
    assert payload["version"] == 2
    assert payload["tool"] == "repro.staticcheck"
    assert payload["ok"] is False
    assert payload["exit_code"] == 1
    assert payload["files_checked"] == 1
    assert payload["cache_hits"] == 0
    assert set(payload["suppressed"]) == {"pragma", "baseline"}
    assert isinstance(payload["stale_baseline"], list)
    assert payload["findings"], "dirty fixture must yield findings"
    for f in payload["findings"]:
        assert set(f) == {"path", "line", "col", "rule", "message", "symbol",
                          "severity", "family", "fix_hint", "fingerprint"}
    # the families rollup sums to the finding count
    assert sum(payload["families"].values()) == len(payload["findings"])
    assert {f["family"] for f in payload["findings"]} == set(payload["families"])


def test_rules_flag_restricts_reporting(check, capsys, tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    code, out, _ = run(check, capsys, str(target), "--no-contract",
                       "--json", "--rules", "determinism")
    payload = json.loads(out)
    assert code == 1
    assert {f["rule"] for f in payload["findings"]} == {"determinism"}


def test_unknown_rule_is_usage_error(check, capsys, tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    code, _, err = run(check, capsys, str(target), "--rules", "no-such-rule")
    assert code == 2
    assert "unknown rules" in err


def test_missing_path_is_usage_error(check, capsys):
    code, _, err = run(check, capsys, "no/such/path.py")
    assert code == 2
    assert "no such path" in err


def test_list_rules_catalogue(check, capsys):
    code, out, _ = run(check, capsys, "--list-rules")
    assert code == 0
    for rule in ("unit-suffix", "unit-mix", "unit-literal", "engine-routing",
                 "determinism", "registry-contract", "zoo-contract"):
        assert rule in out, rule


def test_write_baseline_then_clean_run(check, capsys, tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    baseline = tmp_path / "baseline.json"

    code, out, _ = run(check, capsys, str(target), "--no-contract",
                       "--baseline", str(baseline), "--write-baseline")
    assert code == 0
    assert baseline.exists()

    # grandfathered findings no longer fail the run
    code, out, _ = run(check, capsys, str(target), "--no-contract",
                       "--baseline", str(baseline))
    assert code == 0
    assert "grandfathered" in out

    # ...but a NEW finding still does
    target.write_text(DIRTY + "stamp = datetime.now()\n")
    code, out, _ = run(check, capsys, str(target), "--no-contract",
                       "--baseline", str(baseline))
    assert code == 1
    assert "datetime.now" in out


def test_fixed_findings_surface_as_stale_baseline(check, capsys, tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    baseline = tmp_path / "baseline.json"
    run(check, capsys, str(target), "--no-contract",
        "--baseline", str(baseline), "--write-baseline")

    target.write_text(CLEAN)  # debt paid down
    code, _, err = run(check, capsys, str(target), "--no-contract",
                       "--baseline", str(baseline))
    assert code == 0
    assert "stale baseline" in err


def test_repo_baseline_file_is_valid_and_loadable(check):
    baseline_path = REPO_ROOT / "tools" / "check_baseline.json"
    assert baseline_path.exists()
    payload = json.loads(baseline_path.read_text())
    assert payload["version"] == 2
    assert isinstance(payload["entries"], list)
    for entry in payload["entries"]:
        assert set(entry) == {"fingerprint", "rule", "family"}
        assert entry["fingerprint"].startswith(entry["rule"] + "::")


def test_jobs_output_is_byte_identical_to_serial(check, capsys, tmp_path):
    for i in range(4):
        (tmp_path / f"mod_{i}.py").write_text(DIRTY)
    args = [str(tmp_path), "--no-contract", "--json"]
    code_serial, out_serial, _ = run(check, capsys, *args)
    code_jobs, out_jobs, _ = run(check, capsys, *args, "--jobs", "8")
    assert code_serial == code_jobs == 1
    assert out_jobs == out_serial


def test_cache_round_trip_reuses_results(check, capsys, tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    cache = tmp_path / "cache.json"
    args = [str(target), "--no-contract", "--json", "--cache", str(cache)]

    _, cold, _ = run(check, capsys, *args)
    assert cache.exists()
    assert json.loads(cold)["cache_hits"] == 0

    _, warm, _ = run(check, capsys, *args)
    warm_payload = json.loads(warm)
    assert warm_payload["cache_hits"] == 1
    assert warm_payload["findings"] == json.loads(cold)["findings"]

    # content change invalidates the entry
    target.write_text(DIRTY + "x_us = 1.0\n")
    _, changed, _ = run(check, capsys, *args)
    assert json.loads(changed)["cache_hits"] == 0


def test_repro_cli_check_subcommand_matches_tools_wrapper(check, capsys, tmp_path):
    from repro.cli import main as repro_main

    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)

    code = repro_main(["check", str(target), "--no-contract", "--json"])
    sub_out = capsys.readouterr().out
    wrap_code, wrap_out, _ = run(check, capsys, str(target),
                                 "--no-contract", "--json")
    assert code == wrap_code == 1
    assert json.loads(sub_out)["findings"] == json.loads(wrap_out)["findings"]
