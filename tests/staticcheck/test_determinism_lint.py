"""Determinism lint: wall clocks and unseeded randomness are flagged."""

from __future__ import annotations

from repro.staticcheck import check_source
from repro.staticcheck.determinism_lint import RULE_DETERMINISM

PATH = "src/repro/fixture.py"


def rules_of(source: str):
    return [f.rule for f in check_source(source, PATH)]


def test_wall_clocks_are_flagged():
    for call in ("time.time()", "time.perf_counter()", "time.monotonic()",
                 "time.process_time()", "time.time_ns()"):
        assert rules_of(f"import time\nt = {call}\n") == [RULE_DETERMINISM], call


def test_datetime_now_is_flagged():
    assert rules_of("stamp = datetime.now()\n") == [RULE_DETERMINISM]
    assert rules_of("stamp = date.today()\n") == [RULE_DETERMINISM]


def test_stdlib_random_module_is_flagged():
    assert rules_of("import random\nx = random.random()\n") == [RULE_DETERMINISM]
    assert rules_of("import random as rnd\nx = rnd.gauss(0, 1)\n") == [RULE_DETERMINISM]


def test_from_random_import_is_flagged_at_import_and_call():
    src = "from random import seed\nseed(0)\n"
    assert rules_of(src) == [RULE_DETERMINISM, RULE_DETERMINISM]


def test_numpy_global_rng_is_flagged():
    assert rules_of("x = np.random.rand(3)\n") == [RULE_DETERMINISM]
    assert rules_of("np.random.seed(0)\n") == [RULE_DETERMINISM]


def test_seeded_generator_api_is_allowed():
    src = (
        "rng = np.random.default_rng(1234)\n"
        "gen = np.random.Generator(np.random.PCG64(7))\n"
        "x = rng.normal(size=3)\n"
    )
    assert rules_of(src) == []


def test_unrelated_time_attributes_are_allowed():
    # an object that happens to be named `time` with a non-clock attribute
    assert rules_of("x = time.struct_time\n") == []


def test_pragma_suppresses():
    src = "t = time.time()  # staticcheck: ignore[determinism]\n"
    assert rules_of(src) == []
