"""astcheck fork-safety rule: FanoutTask specs and import-time state."""

from __future__ import annotations

from repro.staticcheck import check_source


def fork(src):
    return check_source(src, "fixture.py", rules=["fork-safety"])


GOOD_TASK = (
    "from dataclasses import dataclass\n"
    "@dataclass(frozen=True)\n"
    "class FitTask:\n"
    "    gpu_key: str\n"
    "    iterations: int\n"
    "    batch_sizes: Tuple[int, ...]\n"
    "    note: Optional[str] = None\n"
    "    def task_id(self):\n"
    "        return f'fit:{self.gpu_key}'\n"
    "    def run(self):\n"
    "        return self.gpu_key\n"
)


# -- true positives -----------------------------------------------------

def test_unfrozen_task_class_is_flagged():
    findings = fork(
        "class FitTask:\n"
        "    gpu_key: str\n"
        "    def task_id(self):\n"
        "        return self.gpu_key\n"
        "    def run(self):\n"
        "        return 1\n"
    )
    assert [f.rule for f in findings] == ["fork-safety"]
    assert "frozen=True" in findings[0].message


def test_lambda_field_default_is_flagged():
    findings = fork(
        "from dataclasses import dataclass, field\n"
        "@dataclass(frozen=True)\n"
        "class FitTask:\n"
        "    hook: Callable = field(default_factory=lambda: None)\n"
        "    def task_id(self):\n"
        "        return 'x'\n"
        "    def run(self):\n"
        "        return 1\n"
    )
    rules = sorted(f.rule for f in findings)
    assert rules == ["fork-safety", "fork-safety"]  # Callable type + lambda
    assert any("lambda" in f.message for f in findings)


def test_mutable_field_types_are_flagged():
    findings = fork(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class FitTask:\n"
        "    rows: List[dict]\n"
        "    def task_id(self):\n"
        "        return 'x'\n"
        "    def run(self):\n"
        "        return 1\n"
    )
    assert len(findings) >= 1
    assert all(f.rule == "fork-safety" for f in findings)
    assert any("FitTask.rows" in f.symbol for f in findings)


def test_module_level_workspace_construction_is_flagged():
    findings = fork(
        "from repro.artifacts import active_workspace\n"
        "ws = active_workspace()\n"
    )
    assert [f.rule for f in findings] == ["fork-safety"]
    assert "import time" in findings[0].message


def test_module_level_lock_acquire_is_flagged():
    findings = fork(
        "import threading\n"
        "_LOCK = threading.Lock()\n"
        "_LOCK.acquire()\n"
    )
    assert [f.rule for f in findings] == ["fork-safety"]
    assert "deadlock" in findings[0].message


# -- false-positive controls --------------------------------------------

def test_well_formed_task_class_is_clean():
    assert fork(GOOD_TASK) == []


def test_protocol_definition_is_exempt():
    findings = fork(
        "from typing import Protocol\n"
        "class FanoutTask(Protocol):\n"
        "    def task_id(self) -> str: ...\n"
        "    def run(self): ...\n"
    )
    assert findings == []


def test_lambda_inside_run_is_fine():
    findings = fork(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class FitTask:\n"
        "    gpu_key: str\n"
        "    def task_id(self):\n"
        "        return 'x'\n"
        "    def run(self):\n"
        "        return sorted([3, 1], key=lambda v: -v)\n"
    )
    assert findings == []


def test_non_task_class_is_not_held_to_the_contract():
    findings = fork(
        "class Config:\n"
        "    build: Callable = lambda: None\n"
    )
    assert findings == []


def test_function_scoped_store_and_lock_are_fine():
    findings = fork(
        "def main():\n"
        "    ws = active_workspace()\n"
        "    lock.acquire()\n"
        "    return ws\n"
    )
    assert findings == []
