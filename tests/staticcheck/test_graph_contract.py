"""Semantic contract checks: the live registry/zoo/models must be clean,
and deliberately broken contracts must be detected."""

from __future__ import annotations

import dataclasses

from repro.graph.ops import OP_REGISTRY
from repro.models.zoo import model_names
from repro.staticcheck import (
    check_contracts,
    check_fitted_models,
    check_registry,
    check_zoo,
)
from repro.staticcheck.graph_contract import RULE_REGISTRY, RULE_ZOO


class TestCleanTree:
    def test_registry_contract_holds(self):
        assert check_registry() == []

    def test_every_zoo_model_passes(self):
        findings = check_zoo()
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_full_sweep_is_clean(self):
        assert check_contracts() == []

    def test_zoo_sweep_covers_all_models(self):
        # the sweep must not silently skip zoo entries
        assert len(model_names()) >= 12


class TestBrokenContractsAreDetected:
    def test_inconsistent_placement_is_flagged(self, monkeypatch):
        from repro.graph.ops import Device

        # a compute-category op claiming to execute on the CPU violates the
        # HOST-category <-> CPU-device invariant
        donor = OP_REGISTRY["Conv2D"]
        rogue = dataclasses.replace(donor, name="RogueOp", device=Device.CPU)
        monkeypatch.setitem(OP_REGISTRY, "RogueOp", rogue)
        findings = check_registry()
        assert any(
            f.rule == RULE_REGISTRY and f.symbol == "RogueOp" for f in findings
        )

    def test_unknown_zoo_model_is_flagged(self):
        findings = check_zoo(models=["no_such_model"])
        assert [f.rule for f in findings] == [RULE_ZOO]
        assert "no_such_model" in findings[0].message

    def test_duplicate_op_names_are_flagged(self, monkeypatch):
        """The checker mirrors the profiler's duplicate-name guard: a
        graph that yields the same op name twice is a contract violation
        (records could not be attributed unambiguously)."""
        import repro.models.zoo as zoo

        real_build = zoo.build_model

        class _CollidingGraph:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, attr):
                return getattr(self._inner, attr)

            def __iter__(self):
                ops = list(self._inner)
                yield from ops
                yield ops[0]  # re-announce the first op's name

            def __contains__(self, name):
                return name in self._inner

        monkeypatch.setattr(
            zoo, "build_model",
            lambda name, batch_size=32: _CollidingGraph(
                real_build(name, batch_size=batch_size)
            ),
        )
        findings = check_zoo(models=["alexnet"])
        duplicate = [
            f for f in findings if "duplicate operation name" in f.message
        ]
        assert duplicate, "\n".join(f.render() for f in findings)
        assert duplicate[0].rule == RULE_ZOO
        assert duplicate[0].symbol.startswith("alexnet.")


class TestFittedModels:
    def test_fitted_models_contract_holds(self, ceer_small):
        findings = check_fitted_models(ceer_small.compute_models)
        assert findings == [], "\n".join(f.render() for f in findings)
