"""astcheck obs rules: instrument-name registry and warm-path contracts."""

from __future__ import annotations

from repro.staticcheck import check_source


def obs(src, rules=("obs-name", "obs-warm")):
    return check_source(src, "fixture.py", rules=list(rules))


# -- true positives -----------------------------------------------------

def test_typoed_span_name_is_flagged():
    findings = obs('with span("engine.comple"):\n    pass\n')
    assert [f.rule for f in findings] == ["obs-name"]
    assert "not registered" in findings[0].message


def test_malformed_span_name_is_flagged():
    findings = obs('with span("Engine Compile"):\n    pass\n')
    assert [f.rule for f in findings] == ["obs-name"]
    assert "subsystem.verb" in findings[0].message


def test_unregistered_dynamic_prefix_is_flagged():
    findings = obs(
        "def run(cmd):\n"
        "    with span(f'sweep.{cmd}'):\n"
        "        pass\n"
    )
    assert [f.rule for f in findings] == ["obs-name"]
    assert "dynamic" in findings[0].message


def test_unregistered_counter_name_is_flagged():
    findings = obs('registry.counter("bogus.name").inc()\n')
    assert [f.rule for f in findings] == ["obs-name"]


def test_span_inside_warm_function_is_flagged():
    findings = obs(
        "# obs: warm\n"
        "def evaluate_row(x):\n"
        "    with span('engine.evaluate'):\n"
        "        return x + 1\n"
    )
    assert [f.rule for f in findings] == ["obs-warm"]
    assert "warm" in findings[0].message


def test_traced_decorator_on_warm_function_is_flagged():
    findings = obs(
        "# obs: warm\n"
        "@traced('engine.evaluate')\n"
        "def evaluate_row(x):\n"
        "    return x + 1\n"
    )
    assert [f.rule for f in findings] == ["obs-warm"]


# -- false-positive controls --------------------------------------------

def test_registered_span_and_counter_are_clean():
    findings = obs(
        "with span('engine.compile'):\n"
        "    registry.counter('batch.sweeps').inc()\n"
    )
    assert findings == []


def test_registered_dynamic_prefixes_are_clean():
    findings = obs(
        "def run(cmd, field):\n"
        "    with span(f'cli.{cmd}'):\n"
        "        registry.counter(f'store.{field}').inc()\n"
    )
    assert findings == []


def test_variable_names_are_untracked():
    # the name was checked where the literal was written
    findings = obs(
        "def open_span(name):\n"
        "    return span(name)\n"
    )
    assert findings == []


def test_span_in_unmarked_function_is_fine():
    findings = obs(
        "def sweep():\n"
        "    with span('batch.sweep'):\n"
        "        return 1\n"
    )
    assert findings == []


def test_counter_in_warm_function_is_allowed():
    # counters are cheap increments; only spans are barred on warm paths
    findings = obs(
        "# obs: warm\n"
        "def evaluate_row(x):\n"
        "    registry.counter('batch.sweeps').inc()\n"
        "    return x + 1\n"
    )
    assert findings == []


def test_nested_cold_helper_keeps_its_own_span():
    findings = obs(
        "# obs: warm\n"
        "def evaluate_row(x):\n"
        "    def cold_path():\n"
        "        with span('engine.compile'):\n"
        "            return 0\n"
        "    return x\n"
    )
    assert findings == []
