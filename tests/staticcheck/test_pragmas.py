"""Pragma machinery: multi-rule line pragmas and file-level pragmas."""

from __future__ import annotations

from repro.staticcheck import check_source, parse_pragmas

DIRTY_LINE = "train_time = total_us + b_ms\n"  # unit-suffix + unit-mix


def test_multi_rule_line_pragma_suppresses_each_listed_rule():
    src = "train_time = total_us + b_ms  # staticcheck: ignore[unit-suffix, unit-mix]\n"
    assert check_source(src, "fixture.py") == []


def test_multi_rule_line_pragma_leaves_unlisted_rules():
    src = "train_time = total_us + b_ms  # staticcheck: ignore[unit-mix]\n"
    findings = check_source(src, "fixture.py")
    assert {f.rule for f in findings} == {"unit-suffix"}


def test_file_level_pragma_suppresses_rule_everywhere():
    src = (
        "# staticcheck: ignore-file[unit-suffix]\n"
        + DIRTY_LINE
        + "other_time = 1.0\n"
    )
    findings = check_source(src, "fixture.py")
    assert "unit-suffix" not in {f.rule for f in findings}
    assert "unit-mix" in {f.rule for f in findings}  # unlisted rules still fire


def test_blanket_file_level_pragma_suppresses_everything():
    src = "# staticcheck: ignore-file\n" + DIRTY_LINE
    assert check_source(src, "fixture.py") == []


def test_multiple_file_pragmas_union():
    src = (
        "# staticcheck: ignore-file[unit-suffix]\n"
        "# staticcheck: ignore-file[unit-mix]\n"
        + DIRTY_LINE
    )
    assert check_source(src, "fixture.py") == []


def test_parse_pragmas_index_shape():
    index = parse_pragmas(
        "# staticcheck: ignore-file[axis-drop]\n"
        "x = 1  # staticcheck: ignore[unit-suffix, determinism]\n"
        "y = 2  # staticcheck: ignore\n"
    )
    assert index.file_rules == frozenset({"axis-drop"})
    assert index.suppresses(3, "axis-drop")  # file-level: any line
    assert index.suppresses(2, "unit-suffix")
    assert index.suppresses(2, "determinism")
    assert not index.suppresses(2, "unit-mix")
    assert index.suppresses(3, "anything")  # blanket line pragma
    assert not index.suppresses(1, "unit-suffix")
