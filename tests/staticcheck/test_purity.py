"""astcheck fingerprint-purity rule: spec builders stay deterministic."""

from __future__ import annotations

from repro.staticcheck import check_source


def purity(src):
    return check_source(src, "fixture.py", rules=["fingerprint-purity"])


# -- true positives -----------------------------------------------------

def test_clock_read_in_spec_builder():
    findings = purity(
        "import time\n"
        "def profile(store, iterations):\n"
        "    spec = {'iterations': iterations, 'at': time.time()}\n"
        "    return store.get_or_create('profile', spec)\n"
    )
    assert [f.rule for f in findings] == ["fingerprint-purity"]
    assert "time.time" in findings[0].symbol


def test_datetime_now_in_spec_builder():
    findings = purity(
        "from datetime import datetime\n"
        "def key(store):\n"
        "    return store.key_for('fit', {'day': datetime.now()})\n"
    )
    assert [f.rule for f in findings] == ["fingerprint-purity"]


def test_non_allowlisted_env_read_in_spec_builder():
    findings = purity(
        "import os\n"
        "def key(store, model):\n"
        "    spec = {'model': model, 'host': os.environ['HOSTNAME']}\n"
        "    return store.key_for('fit', spec)\n"
    )
    assert [f.rule for f in findings] == ["fingerprint-purity"]
    assert "$HOSTNAME" in findings[0].message


def test_cpu_count_in_named_spec_helper():
    # the _canonical_profile_spec factoring: no sink call in sight, but
    # the name + returned local dict make it a builder
    findings = purity(
        "import os\n"
        "def _canonical_profile_spec(iterations):\n"
        "    spec = {'iterations': iterations, 'width': os.cpu_count()}\n"
        "    return spec\n"
    )
    assert [f.rule for f in findings] == ["fingerprint-purity"]
    assert "cpu_count" in findings[0].symbol


def test_jobs_parameter_flowing_into_spec():
    findings = purity(
        "def profile(store, iterations, jobs):\n"
        "    width = jobs * 2\n"
        "    spec = {'iterations': iterations, 'width': width}\n"
        "    return store.get_or_create('profile', spec)\n"
    )
    assert [f.rule for f in findings] == ["fingerprint-purity"]
    assert "parallelism" in findings[0].message


# -- false-positive controls --------------------------------------------

def test_clock_outside_a_builder_is_fine():
    # latency accounting in a non-builder is not key material
    findings = purity(
        "import time\n"
        "def run_and_time(fn):\n"
        "    start_s = time.time()\n"
        "    fn()\n"
        "    return time.time() - start_s\n"
    )
    assert findings == []


def test_store_receiving_a_spec_is_not_a_builder():
    findings = purity(
        "import time\n"
        "def get_or_create(self, kind, spec):\n"
        "    start_s = time.time()\n"
        "    return self._materialise(kind, spec, start_s)\n"
    )
    assert findings == []


def test_allowlisted_env_read_is_fine():
    findings = purity(
        "import os\n"
        "def key(store, model):\n"
        "    root = os.environ.get('REPRO_WORKSPACE', '.')\n"
        "    return store.key_for('fit', {'model': model, 'root': root})\n"
    )
    assert findings == []


def test_jobs_used_outside_the_spec_is_fine():
    findings = purity(
        "def profile(store, iterations, jobs):\n"
        "    spec = {'iterations': iterations}\n"
        "    key = store.get_or_create('profile', spec)\n"
        "    return run_fanout(tasks_for(key), jobs=jobs)\n"
    )
    assert findings == []


def test_pure_spec_builder_is_clean():
    findings = purity(
        "def _canonical_profile_spec(iterations):\n"
        "    return {'schema': 1, 'iterations': iterations}\n"
    )
    assert findings == []
