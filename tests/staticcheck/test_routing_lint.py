"""Engine-routing lint: scalar predict_graph_us stays inside the core."""

from __future__ import annotations

from repro.staticcheck import check_source
from repro.staticcheck.routing_lint import RULE_ROUTING

CALL = "t = models.predict_graph_us(graph, 'V100')\n"


def rules_of(source: str, path: str):
    return [f.rule for f in check_source(source, path)]


def test_call_outside_core_is_flagged():
    assert rules_of(CALL, "src/repro/experiments/fig9.py") == [RULE_ROUTING]


def test_bare_reference_is_flagged_too():
    src = "fn = models.predict_graph_us\n"
    assert rules_of(src, "src/repro/analysis/reporting.py") == [RULE_ROUTING]


def test_engine_and_estimator_are_allowed():
    assert rules_of(CALL, "src/repro/core/engine.py") == []
    assert rules_of(CALL, "src/repro/core/estimator.py") == []
    assert rules_of(CALL, "src/repro/core/op_models.py") == []


def test_tests_and_benchmarks_are_allowed():
    assert rules_of(CALL, "tests/core/test_engine.py") == []
    assert rules_of(CALL, "benchmarks/bench_predict.py") == []


def test_pragma_suppresses():
    src = "t = m.predict_graph_us(g, k)  # staticcheck: ignore[engine-routing]\n"
    assert rules_of(src, "src/repro/experiments/fig9.py") == []
