"""The repository passes its own static analysis (modulo the baseline).

This is the dogfood gate: the tree that ships the checker must be clean
under it. If this test fails, either fix the finding or — for pre-existing
debt a new rule uncovers — regenerate tools/check_baseline.json.
"""

from __future__ import annotations

from pathlib import Path

from repro.staticcheck import load_baseline, run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "tools" / "check_baseline.json"
#: Everything CI checks; the baseline's grandfathered entries live in
#: tools/ and benchmarks/, so staleness is only meaningful over the full set.
CHECKED = [SRC, REPO_ROOT / "tools", REPO_ROOT / "benchmarks",
           REPO_ROOT / "examples"]


def test_src_repro_is_clean_under_own_checker():
    baseline = load_baseline(BASELINE)
    report = run_checks([SRC], REPO_ROOT, baseline=baseline)
    assert report.ok, "\n".join(f.render() for f in report.sorted_findings())
    assert report.files_checked > 80


def test_full_tree_is_clean_under_own_checker():
    baseline = load_baseline(BASELINE)
    report = run_checks(CHECKED, REPO_ROOT, baseline=baseline)
    assert report.ok, "\n".join(f.render() for f in report.sorted_findings())


def test_baseline_has_no_stale_entries():
    baseline = load_baseline(BASELINE)
    report = run_checks(CHECKED, REPO_ROOT, baseline=baseline)
    assert report.stale_baseline == []


def test_staticcheck_package_is_itself_clean():
    report = run_checks(
        [SRC / "staticcheck", SRC / "units.py"], REPO_ROOT, contracts=False
    )
    assert report.ok, "\n".join(f.render() for f in report.sorted_findings())
