"""Unit-safety lint: fixtures that must trip (and must not trip) each rule."""

from __future__ import annotations

from repro.staticcheck import check_source
from repro.staticcheck.unit_lint import (
    RULE_LITERAL,
    RULE_MIX,
    RULE_SUFFIX,
    needs_unit_suffix,
    unit_signature,
)


def rules_of(source: str, path: str = "src/repro/fixture.py"):
    return [f.rule for f in check_source(source, path)]


class TestUnitSignature:
    def test_time_units_canonicalise(self):
        assert unit_signature("total_us") == "us"
        assert unit_signature("per_iteration_ms") == "ms"
        assert unit_signature("elapsed_seconds") == "s"
        assert unit_signature("total_hours") == "hr"

    def test_cost_units(self):
        assert unit_signature("cost_dollars") == "usd"
        assert unit_signature("observed_usd") == "usd"

    def test_rates_combine_cost_and_time(self):
        assert unit_signature("usd_per_hr") == "usd_per_hr"
        assert unit_signature("dollars_per_hour") == "usd_per_hr"
        # "cost" is a trigger token, not a unit: only the time unit survives
        assert unit_signature("cost_per_us") == "us"

    def test_unitless_names_have_no_signature(self):
        assert unit_signature("batch_size") is None
        assert unit_signature("momentum") is None

    def test_substrings_are_not_tokens(self):
        # "sentiment" contains "time", "bus" contains "us": whole-token only.
        assert unit_signature("bus_width") is None
        assert not needs_unit_suffix("sentiment_score")


class TestNeedsUnitSuffix:
    def test_bare_quantity_names_need_suffixes(self):
        for name in ("train_time", "total_cost", "comm_overhead",
                     "hourly_price", "step_latency"):
            assert needs_unit_suffix(name), name

    def test_suffixed_names_pass(self):
        for name in ("train_time_us", "total_cost_usd", "comm_overhead_ms",
                     "usd_per_hr", "total_hours"):
            assert not needs_unit_suffix(name), name

    def test_dimensionless_derivatives_are_exempt(self):
        for name in ("cost_ratio", "time_weight", "speedup", "cost_model",
                     "time_fraction", "pricing_scheme"):
            assert not needs_unit_suffix(name), name


class TestSuffixRule:
    def test_assignment_target(self):
        assert rules_of("train_time = compute()\n") == [RULE_SUFFIX]

    def test_function_name_and_parameter(self):
        src = "def total_cost(overhead):\n    return overhead\n"
        assert rules_of(src) == [RULE_SUFFIX, RULE_SUFFIX]

    def test_attribute_and_annotated_targets(self):
        assert rules_of("self.latency = 3\n") == [RULE_SUFFIX]
        assert rules_of("duration: float = 0.0\n") == [RULE_SUFFIX]

    def test_for_target(self):
        assert rules_of("for elapsed in samples:\n    pass\n") == [RULE_SUFFIX]

    def test_clean_code_passes(self):
        src = (
            "def predict_us(batch_size: int) -> float:\n"
            "    total_us = batch_size * 2.0\n"
            "    return total_us\n"
        )
        assert rules_of(src) == []


class TestMixRule:
    def test_addition_of_different_units(self):
        assert RULE_MIX in rules_of("x = total_us + overhead_ms\n")

    def test_comparison_of_different_units(self):
        assert RULE_MIX in rules_of("flag = total_us > budget_hours\n")

    def test_cost_vs_time_mix(self):
        assert RULE_MIX in rules_of("y = cost_usd - elapsed_s\n")

    def test_same_unit_arithmetic_passes(self):
        assert rules_of("x_us = a_us + b_us\n") == []

    def test_multiplication_is_exempt(self):
        # rate * duration is how conversions are legitimately written
        assert rules_of("cost_usd = usd_per_hr * total_hours\n") == []


class TestLiteralRule:
    def test_division_by_conversion_literal(self):
        assert RULE_LITERAL in rules_of("ms = total_us / 1e3\n")

    def test_multiplication_by_conversion_literal(self):
        assert RULE_LITERAL in rules_of("x_us = elapsed_s * 1e6\n")

    def test_comparison_against_conversion_literal(self):
        assert RULE_LITERAL in rules_of("big = total_us > 3.6e9\n")

    def test_plain_numbers_next_to_unitless_names_pass(self):
        assert rules_of("n = batch_size * 1e6\n") == []

    def test_units_module_is_exempt(self):
        src = "def us_to_s(value_us):\n    return value_us / 1e6\n"
        assert rules_of(src, path="src/repro/units.py") == []


class TestPragmas:
    def test_bare_pragma_suppresses_all_rules_on_line(self):
        src = "train_time = f()  # staticcheck: ignore\n"
        assert rules_of(src) == []

    def test_named_pragma_suppresses_only_named_rule(self):
        src = "train_time = total_us + b_ms  # staticcheck: ignore[unit-suffix]\n"
        assert rules_of(src) == [RULE_MIX]

    def test_pragma_on_other_line_does_not_leak(self):
        src = "# staticcheck: ignore\ntrain_time = f()\n"
        assert rules_of(src) == [RULE_SUFFIX]
