"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.core.persistence import save_estimator
from repro.graph.serialization import save_graph


@pytest.fixture(scope="module")
def estimator_path(ceer_small, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ceer.json"
    save_estimator(ceer_small, path)
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestModels:
    def test_lists_all_twelve(self):
        code, text = _run(["models"])
        assert code == 0
        for name in ("alexnet", "vgg_19", "inception_v3", "resnet_200"):
            assert name in text


class TestPredict:
    def test_zoo_model(self, estimator_path):
        code, text = _run(
            ["predict", "--estimator", estimator_path, "--model", "inception_v3",
             "--gpu", "T4", "--gpus", "2"]
        )
        assert code == 0
        assert "training cost" in text and "training time" in text
        assert "2x T4" in text

    def test_family_alias(self, estimator_path):
        code, text = _run(
            ["predict", "--estimator", estimator_path, "--model", "alexnet",
             "--gpu", "P3"]
        )
        assert code == 0
        assert "V100" in text

    def test_serialized_graph_input(self, estimator_path, tiny_graph, tmp_path):
        graph_path = tmp_path / "g.json"
        save_graph(tiny_graph, graph_path)
        code, text = _run(
            ["predict", "--estimator", estimator_path, "--graph", str(graph_path),
             "--gpu", "V100", "--batch", "4", "--samples", "6400"]
        )
        assert code == 0
        assert "tiny" in text

    def test_missing_model_errors(self, estimator_path):
        code, _ = _run(["predict", "--estimator", estimator_path, "--gpu", "T4"])
        assert code == 2


class TestRecommend:
    def test_min_cost(self, estimator_path):
        code, text = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "inception_v3", "--objective", "min-cost"]
        )
        assert code == 0
        assert "Recommended instance" in text
        assert "g4dn" in text  # Fig 11's winner

    def test_market_prices_flip(self, estimator_path):
        code, text = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "inception_v3", "--objective", "min-cost", "--market-prices"]
        )
        assert code == 0
        assert "K80" in text  # Fig 12's winner

    def test_hourly_budget_requires_budget(self, estimator_path):
        code, _ = _run(
            ["recommend", "--estimator", estimator_path, "--model", "alexnet",
             "--objective", "hourly-budget"]
        )
        assert code == 2

    def test_hourly_budget(self, estimator_path):
        code, text = _run(
            ["recommend", "--estimator", estimator_path, "--model", "alexnet",
             "--objective", "hourly-budget", "--budget", "3.0",
             "--slack", "0.42"]
        )
        assert code == 0
        assert "Recommended instance" in text


class TestFigures:
    def test_unknown_figure_errors(self):
        code, _ = _run(["figures", "fig99"])
        assert code == 2

    def test_single_figure_runs(self):
        code, text = _run(["figures", "fig5", "--iterations", "60"])
        assert code == 0
        assert "normalized std" in text


class TestTradeoff:
    def test_frontier_rendered(self, estimator_path):
        code, text = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3"]
        )
        assert code == 0
        assert "efficient" in text and "knee of the frontier" in text

    def test_market_prices_supported(self, estimator_path):
        code, text = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3", "--market-prices"]
        )
        assert code == 0
        assert "market:" in text


class TestFiguresOutput:
    def test_report_file_written(self, tmp_path):
        report = tmp_path / "report.txt"
        code, text = _run(
            ["figures", "fig4", "--iterations", "60", "--output", str(report)]
        )
        assert code == 0
        assert report.exists()
        assert "Relu" in report.read_text()
