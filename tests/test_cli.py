"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.core.persistence import save_estimator
from repro.graph.serialization import save_graph


@pytest.fixture(scope="module")
def estimator_path(ceer_small, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ceer.json"
    save_estimator(ceer_small, path)
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestModels:
    def test_lists_all_twelve(self):
        code, text = _run(["models"])
        assert code == 0
        for name in ("alexnet", "vgg_19", "inception_v3", "resnet_200"):
            assert name in text


class TestPredict:
    def test_zoo_model(self, estimator_path):
        code, text = _run(
            ["predict", "--estimator", estimator_path, "--model", "inception_v3",
             "--gpu", "T4", "--gpus", "2"]
        )
        assert code == 0
        assert "training cost" in text and "training time" in text
        assert "2x T4" in text

    def test_family_alias(self, estimator_path):
        code, text = _run(
            ["predict", "--estimator", estimator_path, "--model", "alexnet",
             "--gpu", "P3"]
        )
        assert code == 0
        assert "V100" in text

    def test_serialized_graph_input(self, estimator_path, tiny_graph, tmp_path):
        graph_path = tmp_path / "g.json"
        save_graph(tiny_graph, graph_path)
        code, text = _run(
            ["predict", "--estimator", estimator_path, "--graph", str(graph_path),
             "--gpu", "V100", "--batch", "4", "--samples", "6400"]
        )
        assert code == 0
        assert "tiny" in text

    def test_missing_model_errors(self, estimator_path):
        code, _ = _run(["predict", "--estimator", estimator_path, "--gpu", "T4"])
        assert code == 2


class TestRecommend:
    def test_min_cost(self, estimator_path):
        code, text = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "inception_v3", "--objective", "min-cost"]
        )
        assert code == 0
        assert "Recommended instance" in text
        assert "g4dn" in text  # Fig 11's winner

    def test_market_prices_flip(self, estimator_path):
        code, text = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "inception_v3", "--objective", "min-cost", "--market-prices"]
        )
        assert code == 0
        assert "K80" in text  # Fig 12's winner

    def test_hourly_budget_requires_budget(self, estimator_path):
        code, _ = _run(
            ["recommend", "--estimator", estimator_path, "--model", "alexnet",
             "--objective", "hourly-budget"]
        )
        assert code == 2

    def test_hourly_budget(self, estimator_path):
        code, text = _run(
            ["recommend", "--estimator", estimator_path, "--model", "alexnet",
             "--objective", "hourly-budget", "--budget", "3.0",
             "--slack", "0.42"]
        )
        assert code == 0
        assert "Recommended instance" in text


class TestFigures:
    def test_unknown_figure_errors(self):
        code, _ = _run(["figures", "fig99"])
        assert code == 2

    def test_single_figure_runs(self):
        code, text = _run(["figures", "fig5", "--iterations", "60"])
        assert code == 0
        assert "normalized std" in text


class TestTradeoff:
    def test_frontier_rendered(self, estimator_path):
        code, text = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3"]
        )
        assert code == 0
        assert "efficient" in text and "knee of the frontier" in text

    def test_market_prices_supported(self, estimator_path):
        code, text = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3", "--market-prices"]
        )
        assert code == 0
        assert "market:" in text

    def test_full_catalog_frontier(self, estimator_path):
        code, text = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3", "--full-catalog"]
        )
        assert code == 0
        assert "efficient of 36 candidates" in text
        assert "p3.16xlarge" in text  # the extended 8-GPU host is swept

    def test_full_catalog_with_batches(self, estimator_path):
        code, text = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3", "--full-catalog", "--batches", "32,64"]
        )
        assert code == 0
        assert "efficient of 72 candidates" in text

    def test_full_catalog_spot_prices(self, estimator_path):
        code, text = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3", "--full-catalog", "--spot"]
        )
        assert code == 0
        assert "spot:" in text and "aws-spot" in text

    def test_batches_requires_full_catalog(self, estimator_path):
        code, _ = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3", "--batches", "32,64"]
        )
        assert code == 2

    def test_bad_batches_rejected(self, estimator_path):
        code, _ = _run(
            ["tradeoff", "--estimator", estimator_path, "--model",
             "inception_v3", "--full-catalog", "--batches", "32,abc"]
        )
        assert code == 2


class TestSpotFlag:
    def test_predict_spot_prices(self, estimator_path):
        code, text = _run(
            ["predict", "--estimator", estimator_path, "--model", "alexnet",
             "--gpu", "T4", "--spot"]
        )
        assert code == 0
        assert "spot:" in text

    def test_spot_conflicts_with_market(self, estimator_path):
        code, _ = _run(
            ["predict", "--estimator", estimator_path, "--model", "alexnet",
             "--gpu", "T4", "--spot", "--market-prices"]
        )
        assert code == 2

    def test_recommend_spot_cheaper_than_on_demand(self, estimator_path):
        code, on_demand = _run(
            ["recommend", "--estimator", estimator_path, "--model", "alexnet",
             "--objective", "min-cost"]
        )
        assert code == 0
        code, spot = _run(
            ["recommend", "--estimator", estimator_path, "--model", "alexnet",
             "--objective", "min-cost", "--spot"]
        )
        assert code == 0
        assert "spot:" in spot


class TestCatalogCommand:
    def test_lists_paper_and_extended_hosts(self):
        code, text = _run(["catalog", "list"])
        assert code == 0
        for name in ("p3.2xlarge", "p3.16xlarge", "g4dn.metal", "p2.16xlarge"):
            assert name in text
        assert "paper" in text
        assert "36 (GPU model, count) configurations" in text

    def test_gpu_filter(self):
        code, text = _run(["catalog", "list", "--gpu", "K80"])
        assert code == 0
        assert "p2.xlarge" in text and "p2.16xlarge" in text
        assert "p3.2xlarge" not in text

    def test_gpu_filter_family_alias(self):
        code, text = _run(["catalog", "list", "--gpu", "P2"])
        assert code == 0
        assert "p2.16xlarge" in text

    def test_unknown_gpu_errors(self):
        code, _ = _run(["catalog", "list", "--gpu", "H100"])
        assert code == 2


class TestFiguresOutput:
    def test_report_file_written(self, tmp_path):
        report = tmp_path / "report.txt"
        code, text = _run(
            ["figures", "fig4", "--iterations", "60", "--output", str(report)]
        )
        assert code == 0
        assert report.exists()
        assert "Relu" in report.read_text()


class TestWorkspaceFlag:
    def test_fit_uses_named_workspace(self, tmp_path):
        ws = tmp_path / "ws"
        out = tmp_path / "ceer.json"
        code, text = _run(
            ["fit", "--iterations", "30", "--output", str(out),
             "--workspace", str(ws), "--no-warm-test-profiles"]
        )
        assert code == 0
        assert str(ws) in text
        assert out.exists()
        assert (ws / "profile").exists()
        assert (ws / "fitted").exists()

    def test_figures_counters_out(self, tmp_path):
        counters_path = tmp_path / "counters.json"
        code, text = _run(
            ["figures", "fig5", "--iterations", "30",
             "--workspace", str(tmp_path / "ws"),
             "--counters-out", str(counters_path)]
        )
        assert code == 0
        import json

        counters = json.loads(counters_path.read_text())
        assert counters["profile"]["misses"] >= 1
        assert counters["figure"]["misses"] == 1

    def test_repeat_figures_invocation_hits_cache(self, tmp_path):
        ws = tmp_path / "ws"
        argv = ["figures", "fig5", "--iterations", "30", "--workspace", str(ws)]
        code, first = _run(argv)
        assert code == 0
        counters_path = tmp_path / "counters.json"
        code, second = _run(argv + ["--counters-out", str(counters_path)])
        assert code == 0
        import json

        counters = json.loads(counters_path.read_text())
        # The second run reuses the rendered figure outright, so profiles
        # are never even requested — no profile counter appears at all.
        assert counters.get("profile", {}).get("misses", 0) == 0
        assert counters["figure"]["misses"] == 0
        assert counters["figure"]["hits_disk"] == 1


class TestJobsFlag:
    def test_fit_jobs_matches_serial_estimator_bytes(self, tmp_path):
        """``fit --jobs 2`` must write the same estimator file, byte for
        byte, as a serial fit — the CLI surface of the determinism
        guarantee."""
        serial_out = tmp_path / "serial.json"
        code, _ = _run(
            ["fit", "--iterations", "30", "--output", str(serial_out),
             "--workspace", str(tmp_path / "ws-serial"),
             "--no-warm-test-profiles"]
        )
        assert code == 0
        parallel_out = tmp_path / "parallel.json"
        code, _ = _run(
            ["fit", "--iterations", "30", "--output", str(parallel_out),
             "--workspace", str(tmp_path / "ws-parallel"),
             "--no-warm-test-profiles", "--jobs", "2"]
        )
        assert code == 0
        assert parallel_out.read_bytes() == serial_out.read_bytes()
        # The fan-out left per-cell profile artifacts next to the combined
        # dataset (serial fits store only the combined artifact).
        cells = list((tmp_path / "ws-parallel" / "profile").glob("*.json"))
        assert len(cells) > len(
            list((tmp_path / "ws-serial" / "profile").glob("*.json"))
        )

    def test_figures_jobs_matches_serial_report(self, tmp_path):
        argv = ["figures", "fig2", "fig5", "--iterations", "30"]
        code, serial_text = _run(
            argv + ["--workspace", str(tmp_path / "ws-serial")]
        )
        assert code == 0
        code, parallel_text = _run(
            argv + ["--workspace", str(tmp_path / "ws-parallel"),
                    "--jobs", "2"]
        )
        assert code == 0
        assert parallel_text == serial_text


class TestCacheCommand:
    def test_empty_list(self, tmp_path):
        code, text = _run(["cache", "list", "--workspace", str(tmp_path / "ws")])
        assert code == 0
        assert "empty" in text

    def test_list_info_clear_round_trip(self, tmp_path):
        ws = str(tmp_path / "ws")
        code, _ = _run(["figures", "fig5", "--iterations", "30",
                        "--workspace", ws])
        assert code == 0
        code, listing = _run(["cache", "list", "--workspace", ws])
        assert code == 0
        assert "figure" in listing and "profile" in listing

        from repro.artifacts.workspace import Workspace

        [info] = Workspace(ws).store.entries("figure")
        code, detail = _run(["cache", "info", info.key, "--workspace", ws])
        assert code == 0
        assert info.key in detail
        assert "fig5" in detail

        code, text = _run(["cache", "clear", "--kind", "figure",
                           "--workspace", ws])
        assert code == 0
        assert "removed 1" in text
        code, listing = _run(["cache", "list", "--workspace", ws])
        assert "figure " not in listing

    def test_info_unknown_key_errors(self, tmp_path):
        code, _ = _run(["cache", "info", "deadbeef",
                        "--workspace", str(tmp_path / "ws")])
        assert code == 2

    def test_info_without_key_summarizes_workspace(self, tmp_path):
        ws = str(tmp_path / "ws")
        code, _ = _run(["figures", "fig5", "--iterations", "30",
                        "--workspace", ws])
        assert code == 0
        code, summary = _run(["cache", "info", "--workspace", ws])
        assert code == 0
        assert "figure" in summary and "profile" in summary
        assert "artifact(s)" in summary

    def test_info_on_nonexistent_workspace_is_empty_not_error(self, tmp_path):
        missing = tmp_path / "never-created"
        code, text = _run(["cache", "info", "--workspace", str(missing)])
        assert code == 0
        assert "total: 0 artifact(s), 0 bytes" in text
        # A read-only inspection command must not create the directory.
        assert not missing.exists()

    def test_clear_on_nonexistent_workspace_is_empty_not_error(self, tmp_path):
        missing = tmp_path / "never-created"
        code, text = _run(["cache", "clear", "--workspace", str(missing)])
        assert code == 0
        assert "removed 0" in text
        assert not missing.exists()

    def test_key_is_stable_and_iteration_sensitive(self, tmp_path):
        ws = str(tmp_path / "ws")
        code, a = _run(["cache", "key", "--workspace", ws])
        assert code == 0
        code, b = _run(["cache", "key", "--workspace", ws])
        assert a == b
        assert len(a.strip()) == 20
        code, c = _run(["cache", "key", "--iterations", "60",
                        "--workspace", ws])
        assert c != a


class TestObservabilityFlags:
    def _x_names(self, trace_path):
        import json

        doc = json.loads(trace_path.read_text())
        return [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]

    def test_trace_out_after_subcommand(self, tmp_path):
        trace = tmp_path / "trace.json"
        code, text = _run(["models", "--trace-out", str(trace)])
        assert code == 0
        assert "trace written" in text
        assert "cli.models" in self._x_names(trace)

    def test_trace_out_before_subcommand(self, tmp_path):
        trace = tmp_path / "trace.json"
        code, _ = _run(["--trace-out", str(trace), "models"])
        assert code == 0
        assert "cli.models" in self._x_names(trace)

    def test_trace_env_var(self, tmp_path, monkeypatch):
        trace = tmp_path / "trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        code, _ = _run(["models"])
        assert code == 0
        assert trace.exists()

    def test_tracing_disabled_leaves_no_tracer(self, tmp_path):
        from repro.obs.spans import tracing_enabled

        code, _ = _run(["models"])
        assert code == 0
        assert not tracing_enabled()

    def test_figures_trace_records_pipeline_spans(self, tmp_path):
        trace = tmp_path / "trace.json"
        code, _ = _run(["figures", "fig5", "--iterations", "30",
                        "--workspace", str(tmp_path / "ws"),
                        "--trace-out", str(trace)])
        assert code == 0
        names = self._x_names(trace)
        assert "cli.figures" in names
        # A cold figures run profiles and fits, so pipeline spans nest
        # under the CLI root span.
        assert "profile.run" in names
        assert "store.compute" in names

    def test_metrics_out_includes_store_counters(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        counters = tmp_path / "counters.json"
        code, text = _run(["figures", "fig5", "--iterations", "30",
                           "--workspace", str(tmp_path / "ws"),
                           "--metrics-out", str(metrics),
                           "--counters-out", str(counters)])
        assert code == 0
        assert "metrics written" in text
        doc = json.loads(metrics.read_text())
        assert doc["format"] == "repro-metrics"
        by_series = {
            (r["name"], r["labels"].get("kind")): r["value"]
            for r in doc["metrics"]
        }
        # The store's counters surface in the metrics export with the
        # exact same numbers as the legacy --counters-out JSON.
        legacy = json.loads(counters.read_text())
        for kind, fields in legacy.items():
            for field in ("misses", "hits_disk", "bytes_written"):
                assert by_series[(f"store.{field}", kind)] == fields[field]


class TestCatalogAdmit:
    """``catalog admit`` + transfer-backend predictions on spec-only GPUs."""

    SPEC = {
        "key": "A10G", "family": "G5", "marketing_name": "NVIDIA A10G",
        "cuda_cores": 9216, "tensor_cores": 288, "memory_gb": 24,
        "peak_gflops": 31200.0, "memory_bandwidth_gbps": 600.0,
        "launch_overhead_us": 4.0, "saturation_elements": 1.0e6,
        "comm_base_us": 4000.0, "comm_us_per_mparam": 300.0,
    }

    @pytest.fixture(scope="class")
    def transfer_estimator_path(self, train_profiles_small, tmp_path_factory):
        from repro.core.fit import fit_ceer

        fitted = fit_ceer(
            n_iterations=80, gpu_counts=(1, 2),
            train_profiles=train_profiles_small, backend="transfer",
        )
        path = tmp_path_factory.mktemp("cli-transfer") / "ceer.json"
        save_estimator(fitted.estimator, path)
        return str(path)

    @pytest.fixture
    def spec_file(self, tmp_path):
        import json

        path = tmp_path / "a10g.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    @pytest.fixture
    def clean_admitted(self):
        from repro.cloud.catalog import clear_admitted

        yield
        clear_admitted("A10G")

    def test_admit_then_predict_with_uncertainty(
        self, transfer_estimator_path, spec_file, tmp_path, clean_admitted
    ):
        ws = str(tmp_path / "ws")
        code, text = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "1.006", "--max-gpus", "4", "--workspace", ws]
        )
        assert code == 0
        assert "admitted A10G" in text and "admitted_gpus.json" in text
        code, text = _run(
            ["predict", "--estimator", transfer_estimator_path,
             "--model", "resnet_50", "--gpu", "A10G", "--gpus", "2",
             "--workspace", ws]
        )
        assert code == 0
        assert "2x A10G" in text
        # Spec-only predictions must surface their uncertainty bands.
        assert "(±" in text

    def test_admitted_gpu_listed_in_catalog(
        self, spec_file, tmp_path, clean_admitted
    ):
        ws = str(tmp_path / "ws")
        code, _ = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "1.006", "--workspace", ws]
        )
        assert code == 0
        code, text = _run(["catalog", "list", "--gpu", "A10G",
                           "--workspace", ws])
        assert code == 0
        assert "a10g.admitted" in text and "admitted" in text
        # No market snapshot exists for an admitted GPU: spot shows "-".
        assert "-" in text

    def test_per_gpu_estimator_rejects_admitted_gpu(
        self, estimator_path, spec_file, tmp_path, clean_admitted
    ):
        ws = str(tmp_path / "ws")
        code, _ = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "1.006", "--workspace", ws]
        )
        assert code == 0
        code, _ = _run(
            ["predict", "--estimator", estimator_path, "--model", "resnet_50",
             "--gpu", "A10G", "--workspace", ws]
        )
        assert code == 2

    def test_tradeoff_full_catalog_sweeps_admitted(
        self, transfer_estimator_path, spec_file, tmp_path, clean_admitted
    ):
        ws = str(tmp_path / "ws")
        code, _ = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "1.006", "--max-gpus", "4", "--workspace", ws]
        )
        assert code == 0
        code, text = _run(
            ["tradeoff", "--estimator", transfer_estimator_path,
             "--model", "resnet_50", "--full-catalog", "--workspace", ws]
        )
        assert code == 0
        assert "a10g.admitted" in text

    def test_missing_spec_field_errors(self, tmp_path):
        import json

        bad = dict(self.SPEC)
        del bad["peak_gflops"]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        code, _ = _run(
            ["catalog", "admit", "--spec", str(path), "--usd-per-hr", "1.0",
             "--workspace", str(tmp_path / "ws")]
        )
        assert code == 2

    def test_unknown_spec_field_errors(self, tmp_path):
        import json

        bad = dict(self.SPEC)
        bad["boost_clock_mhz"] = 1710
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        code, _ = _run(
            ["catalog", "admit", "--spec", str(path), "--usd-per-hr", "1.0",
             "--workspace", str(tmp_path / "ws")]
        )
        assert code == 2

    def test_unreadable_spec_file_errors(self, tmp_path):
        code, _ = _run(
            ["catalog", "admit", "--spec", str(tmp_path / "missing.json"),
             "--usd-per-hr", "1.0", "--workspace", str(tmp_path / "ws")]
        )
        assert code == 2

    def test_duplicate_admit_errors_without_replace(
        self, spec_file, tmp_path, clean_admitted, capsys
    ):
        ws = str(tmp_path / "ws")
        code, _ = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "1.0", "--workspace", ws]
        )
        assert code == 0
        code, _ = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "2.0", "--workspace", ws]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "already admitted" in err and "--replace" in err

    def test_duplicate_admit_succeeds_with_replace(
        self, spec_file, tmp_path, clean_admitted
    ):
        from repro.cloud.catalog import instance_by_name

        ws = str(tmp_path / "ws")
        code, _ = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "1.0", "--workspace", ws]
        )
        assert code == 0
        code, text = _run(
            ["catalog", "admit", "--spec", spec_file,
             "--usd-per-hr", "2.0", "--replace", "--workspace", ws]
        )
        assert code == 0
        assert "admitted A10G" in text
        assert instance_by_name("a10g.admitted").usd_per_hr == 2.0


class TestFitBackendFlag:
    def test_transfer_backend_fit_writes_v2_estimator(self, tmp_path):
        import json

        out = tmp_path / "ceer.json"
        code, text = _run(
            ["fit", "--iterations", "30", "--backend", "transfer",
             "--output", str(out), "--workspace", str(tmp_path / "ws"),
             "--no-warm-test-profiles"]
        )
        assert code == 0
        assert out.exists()
        doc = json.loads(out.read_text())
        assert doc["version"] == 2
        assert doc["backend"] == "transfer"

    def test_unknown_backend_rejected(self, tmp_path):
        # argparse rejects the choice before the command body runs
        with pytest.raises(SystemExit):
            _run(
                ["fit", "--iterations", "30", "--backend", "nope",
                 "--output", str(tmp_path / "x.json"),
                 "--workspace", str(tmp_path / "ws")]
            )


class TestSpotScenario:
    """``recommend --scenario spot``: trace-driven preemption-aware ranking."""

    def test_spot_recommendation_renders(self, estimator_path):
        code, text = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "alexnet", "--scenario", "spot", "--seed", "7",
             "--risk-aversion", "0.5"]
        )
        assert code == 0
        assert "spot scenario (seed 7" in text
        assert "expected makespan" in text and "expected cost" in text
        assert "spot:" in text

    def test_ticks_advance_the_market(self, estimator_path):
        code1, text1 = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "alexnet", "--scenario", "spot", "--seed", "7"]
        )
        code2, text2 = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "alexnet", "--scenario", "spot", "--seed", "7",
             "--ticks", "3"]
        )
        assert code1 == code2 == 0
        assert "tick 0" in text1 and "tick 2" in text2
        assert text1 != text2

    def test_deterministic_for_a_seed(self, estimator_path):
        args = ["recommend", "--estimator", estimator_path, "--model",
                "alexnet", "--scenario", "spot", "--seed", "11",
                "--ticks", "2"]
        assert _run(args) == _run(args)

    @pytest.mark.parametrize("extra", [
        ["--spot"],
        ["--market-prices"],
        ["--objective", "min-time"],
        ["--budget", "3"],
        ["--slack", "0.1"],
    ])
    def test_conflicting_flags_rejected(self, estimator_path, extra,
                                        capsys):
        code, _ = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "alexnet", "--scenario", "spot"] + extra
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "conflict" in err and "spot-risk" in err

    @pytest.mark.parametrize("extra", [
        ["--seed", "7"],
        ["--ticks", "2"],
        ["--risk-aversion", "0.5"],
    ])
    def test_spot_flags_require_spot_scenario(self, estimator_path, extra,
                                              capsys):
        code, _ = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "alexnet"] + extra
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "requires --scenario spot" in err

    def test_negative_risk_aversion_rejected(self, estimator_path, capsys):
        code, _ = _run(
            ["recommend", "--estimator", estimator_path, "--model",
             "alexnet", "--scenario", "spot", "--risk-aversion", "-1"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "risk-aversion" in err


class TestAdmitSpotRatio:
    """``catalog admit --spot-ratio`` persists and surfaces in predictions."""

    @pytest.fixture
    def spec_file(self, tmp_path):
        import json

        spec = dict(TestCatalogAdmit.SPEC)
        path = tmp_path / "a10g.json"
        path.write_text(json.dumps(spec))
        return str(path)

    @pytest.fixture
    def clean_admitted(self):
        from repro.cloud.catalog import clear_admitted

        yield
        clear_admitted("A10G")

    def test_ratio_recorded_and_reloaded(
        self, spec_file, tmp_path, clean_admitted
    ):
        import json

        from repro.cloud.catalog import admitted_spot_ratios, clear_admitted

        ws = str(tmp_path / "ws")
        code, text = _run(
            ["catalog", "admit", "--spec", spec_file, "--usd-per-hr",
             "1.006", "--spot-ratio", "0.35", "--workspace", ws]
        )
        assert code == 0
        assert "spot at 0.35x On-Demand" in text
        doc = json.loads(
            (tmp_path / "ws" / "admitted_gpus.json").read_text()
        )
        assert doc["gpus"][0]["spot_ratio"] == 0.35
        clear_admitted("A10G")
        # A fresh command pointed at the workspace re-admits with ratio.
        code, _ = _run(["catalog", "list", "--workspace", ws])
        assert code == 0
        assert admitted_spot_ratios()["A10G"] == 0.35

    def test_bad_ratio_rejected(self, spec_file, tmp_path, clean_admitted,
                                capsys):
        code, _ = _run(
            ["catalog", "admit", "--spec", spec_file, "--usd-per-hr",
             "1.006", "--spot-ratio", "1.5",
             "--workspace", str(tmp_path / "ws")]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "spot_ratio" in err
