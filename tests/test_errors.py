"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_unseen_operation_error_fields(self):
        exc = errors.UnseenOperationError("BatchMatMul", "V100")
        assert exc.op_type == "BatchMatMul"
        assert exc.device == "V100"
        assert "Section IV-D" in str(exc)
        assert isinstance(exc, errors.ModelingError)

    def test_catchability_by_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CatalogError("x")

    def test_subsystem_errors_distinct(self):
        assert not issubclass(errors.ShapeError, errors.GraphError)
        assert not issubclass(errors.CatalogError, errors.ModelingError)
