"""End-to-end integration tests: the full profile -> fit -> predict ->
recommend pipeline, plus cross-module invariants."""

import pytest

from repro import (
    IMAGENET_EPOCH,
    GraphBuilder,
    HourlyBudget,
    MinimizeCost,
    MinimizeTime,
    Recommender,
    TrainingJob,
    measure_training,
)
from repro.workloads.dataset import IMAGENET_6400

JOB = TrainingJob(IMAGENET_6400, batch_size=32)


class TestEndToEnd:
    def test_fit_predict_recommend(self, ceer_small):
        """The quickstart flow works against the public API."""
        recommender = Recommender(ceer_small)
        rec = recommender.recommend("inception_v3", IMAGENET_EPOCH, MinimizeCost())
        assert rec.best.cost_dollars > 0
        assert rec.best.instance_name
        assert len(rec.ranked) == 16

    def test_custom_cnn_prediction(self, ceer_small):
        """Ceer predicts a never-seen architecture built with the public
        builder — the 'arbitrary CNN' promise of the paper."""
        b = GraphBuilder("custom", batch_size=32, image_hw=(128, 128),
                        num_classes=100)
        x = b.input()
        x = b.conv(x, 32, 3, batch_norm=True)
        x = b.max_pool(x, 2, 2)
        x = b.conv(x, 64, 3, batch_norm=True)
        x = b.max_pool(x, 2, 2)
        x = b.conv(x, 128, 3, batch_norm=True)
        x = b.global_avg_pool(x)
        logits = b.dense(x, 100, activation=None)
        graph = b.finalize(logits)

        predicted = ceer_small.predict_training(graph, "T4", 1, JOB)
        observed = measure_training(graph, "T4", 1, JOB, n_profile_iterations=60,
                                    seed_context="custom-eval")
        error = abs(predicted.per_iteration_us - observed.per_iteration_us)
        # This toy CNN sits far outside the training models' size range
        # (0.1M params, 128x128 input), so accuracy degrades vs the ~3%
        # seen on the held-out zoo models — the extrapolation caveat of
        # the paper's Section IV-D. It must still be usefully close.
        assert error / observed.per_iteration_us < 0.25

    def test_objectives_consistent(self, ceer_small):
        recommender = Recommender(ceer_small)
        fastest = recommender.recommend("alexnet", JOB, MinimizeTime()).best
        cheapest = recommender.recommend("alexnet", JOB, MinimizeCost()).best
        assert fastest.total_us <= cheapest.total_us
        assert cheapest.cost_dollars <= fastest.cost_dollars

    def test_budget_objective_respected_end_to_end(self, ceer_small):
        rec = Recommender(ceer_small).recommend(
            "alexnet", JOB, HourlyBudget(budget_usd_per_hr=1.0)
        )
        assert rec.best.usd_per_hr <= 1.0

    def test_prediction_stability_across_processes(self, ceer_small):
        """Determinism: repeated predictions are bit-identical."""
        a = ceer_small.predict_training("vgg_19", "M60", 2, JOB)
        b = ceer_small.predict_training("vgg_19", "M60", 2, JOB)
        assert a.total_us == b.total_us

    def test_cost_equals_time_times_rate_everywhere(self, ceer_small):
        """C = T x c for every candidate (the paper's cost relation)."""
        for p in Recommender(ceer_small).sweep("resnet_101", JOB):
            assert p.cost_dollars == pytest.approx(p.total_hours * p.usd_per_hr)

    def test_training_time_monotone_in_dataset_size(self, ceer_small):
        small = ceer_small.predict_training(
            "alexnet", "T4", 1, TrainingJob(IMAGENET_6400, batch_size=32)
        )
        big = ceer_small.predict_training("alexnet", "T4", 1, IMAGENET_EPOCH)
        assert big.total_us > small.total_us
        assert big.per_iteration_us == pytest.approx(small.per_iteration_us)


class TestPublicApi:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__
