"""Quantitative reproduction checks against the paper's reported results.

Each test asserts the *shape* of a paper claim (who wins, in which
direction, roughly by how much) on the simulated substrate, with bands
wide enough to absorb the documented calibration deviations
(see EXPERIMENTS.md for the full paper-vs-measured table).
"""

import pytest

from repro.analysis.stats import fraction_below, percentile_of
from repro.experiments import (
    run_ablations,
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)

N = 80


@pytest.fixture(scope="module")
def fig2(train_profiles_small):
    return run_fig2(train_profiles_small)


class TestSectionIII:
    def test_about_twenty_heavy_op_types(self, fig2):
        """Section III-A: ~20 heavy op types dominate training time."""
        assert 18 <= len(fig2.mean_us) <= 23

    def test_p3_much_faster_than_p2(self, fig2):
        """Paper: ~10x; our substrate compresses this to ~5-8x."""
        assert 4.5 <= fig2.ratio_p2_over_p3 <= 11.0

    def test_p3_faster_than_g4(self, fig2):
        """Paper: ~4x; ours ~2.5-3.5x."""
        assert 2.2 <= fig2.ratio_g4_over_p3 <= 4.5

    def test_p2_slower_than_g3_on_average(self, fig2):
        """Paper: P2 ~50% slower than G3 on average."""
        assert fig2.ratio_p2_over_g3 > 1.05

    def test_g3_slower_than_p2_for_some_ops(self, fig2):
        """Paper: 'for some operations, G3 has higher compute times than
        P2' (memory-bound kernels)."""
        assert any(
            per_gpu["M60"] > per_gpu["K80"] for per_gpu in fig2.mean_us.values()
        )

    def test_heavy_ops_dominate_training_time(self, fig2):
        """Paper: heavy ops cover 47-94% of per-iteration time per CNN.
        (Ours sit at the top of that band.)"""
        for model, share in fig2.heavy_time_share_per_model.items():
            assert share > 0.47, model

    def test_light_ops_under_seven_percent(self, fig2):
        assert fig2.light_time_share_overall < 0.07

    def test_fig3_g4_wins_most_p3_wins_pooling(self, train_profiles_small):
        result = run_fig3(train_profiles_small)
        assert result.g4_win_count >= 3 * result.p3_win_count
        assert result.p3_win_count == 4
        assert set(result.p3_wins) == {
            "AvgPool", "AvgPoolGrad", "MaxPool", "MaxPoolGrad",
        }

    def test_fig3_pooling_advantage_about_twenty_percent(self, train_profiles_small):
        """Paper: P3 ~20% cheaper on pooling ops, peak 31% (AvgPool)."""
        result = run_fig3(train_profiles_small)
        assert 0.10 <= result.pooling_p3_advantage <= 0.35

    def test_fig5_variability(self, train_profiles_small):
        """Paper: 95% of heavy-op normalized stddevs below 0.1."""
        result = run_fig5(train_profiles_small)
        assert fraction_below(result.heavy_all, 0.1) >= 0.95
        # light/CPU ops are much more variable than heavy ops
        assert percentile_of(result.light_values, 50) > 2 * percentile_of(
            result.heavy_all, 50
        )
        assert percentile_of(result.cpu_values, 50) > 0.3


class TestFig6Scaling:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6(n_iterations=N)

    def test_average_reductions_match_paper_bands(self, fig6):
        """Paper: ~35.8% / ~46.6% / ~53.6% for 2/3/4 GPUs."""
        assert 0.30 <= fig6.average_reduction(2) <= 0.47
        assert 0.42 <= fig6.average_reduction(3) <= 0.60
        assert 0.48 <= fig6.average_reduction(4) <= 0.68

    def test_sublinear_everywhere(self, fig6):
        for g in ("V100", "K80", "T4", "M60"):
            assert fig6.reduction(g, 2) < 0.5
            assert fig6.reduction(g, 4) < 0.75


class TestFig7CommModel:
    def test_r2_in_paper_band(self):
        """Paper: regression R^2 0.88-0.98 per (GPU, k)."""
        result = run_fig7(gpu_counts=(1, 2, 4), n_iterations=N)
        for key, r2 in result.model.r2.items():
            assert r2 >= 0.85, key


class TestSectionV:
    @pytest.fixture(scope="module")
    def fig8(self, ceer_small):
        return run_fig8(estimator=ceer_small, n_iterations=N)

    def test_validation_error_within_paper_band(self, fig8):
        """Paper: 5.4% average error; ours must be at least that good-ish."""
        assert fig8.average_error < 0.08

    def test_perfect_gpu_ranking(self, fig8):
        for model in ("inception_v3", "alexnet", "resnet_101", "vgg_19"):
            assert fig8.ranking_correct(model)

    def test_p3_reduction_magnitudes(self, fig8):
        """Paper: P3 cuts training time by 72%/63%/48% vs P2/G3/G4 on
        4-GPU instances (ours run somewhat larger for P2/G3)."""
        assert 0.60 <= fig8.p3_time_reduction("K80") <= 0.95
        assert 0.50 <= fig8.p3_time_reduction("M60") <= 0.90
        assert 0.35 <= fig8.p3_time_reduction("T4") <= 0.70

    def test_fig9_split_and_agreement(self, ceer_small):
        result = run_fig9(estimator=ceer_small, n_iterations=N)
        models = ("inception_v3", "alexnet", "resnet_101", "vgg_19")
        # Ceer's pick always matches the observed optimum...
        for m in models:
            assert result.best_config(m) == result.best_config(m, True)
        # ...the winner is CNN-dependent, split between G4 and P3 configs...
        winner_gpus = {result.best_config(m).split(".")[0] for m in models}
        assert len(winner_gpus) == 2
        # ...and a P3-default strategy pays a penalty on G4-winning CNNs.
        penalties = [result.p3_default_penalty(m) for m in models]
        assert max(penalties) > 0.08

    def test_fig10_feasibility_story(self, ceer_small):
        result = run_fig10(estimator=ceer_small, n_iterations=N)
        # All P2 configurations and the 4-GPU P3 exceed the budget.
        feasible = set(result.feasible(False))
        assert not any(g == "K80" for g, _ in feasible)
        assert ("V100", 4) not in feasible
        # The 3-GPU P3 is the observed and predicted optimum.
        assert result.best_config(False) == ("V100", 3)
        assert result.best_config(True) == ("V100", 3)
        # Cheapest-rate feasible choice (1-GPU G3) is ~an order of
        # magnitude slower (paper: 9.1x).
        assert 6.0 <= result.cheapest_rate_penalty() <= 16.0

    def test_fig11_g4_cheapest_with_margins(self, ceer_small):
        result = run_fig11(estimator=ceer_small, n_iterations=N)
        assert result.best_config(False) == ("T4", 1)
        # Paper: cheapest instance (1-GPU G3) costs 1.6x, most powerful
        # (4-GPU P3) 1.8x; ours land near 1.9x / 2.1x.
        assert 1.3 <= result.cost_ratio("M60", 1) <= 2.5
        assert 1.5 <= result.cost_ratio("V100", 4) <= 3.0
        assert result.average_error() < 0.06

    def test_fig12_market_prices_flip_winner(self, ceer_small):
        result = run_fig12(estimator=ceer_small, n_iterations=N)
        assert result.best_config(False) == ("K80", 1)
        # The Fig. 11 winner (1-GPU G4) now costs a multiple of optimal.
        assert result.cost_ratio("T4", 1) > 1.2


class TestAblationClaims:
    @pytest.fixture(scope="class")
    def ablations(self):
        return run_ablations(gpu_counts=(1, 4), n_iterations=N)

    def test_full_ceer_error_band(self, ablations):
        """Paper: ~4.2% average test error; ours <= 6%."""
        assert ablations.mean_error("ceer (full)") < 0.06

    def test_no_comm_single_gpu_error_band(self, ablations):
        """Paper: ignoring communication costs 5-20% on one GPU
        (AlexNet ~30%)."""
        err = ablations.mean_error("no-communication (Eq. 1)", num_gpus=1)
        assert 0.05 <= err <= 0.30

    def test_no_comm_multi_gpu_much_worse(self, ablations):
        assert ablations.mean_error(
            "no-communication (Eq. 1)", num_gpus=4
        ) > ablations.mean_error("no-communication (Eq. 1)", num_gpus=1)

    def test_layer_level_error_matches_giannini(self, ablations):
        """Paper (Section VII): layer-level modeling errs up to ~22% on a
        single GPU."""
        assert ablations.mean_error("layer-level (Giannini-style)", num_gpus=1) > 0.12

    def test_heavy_op_regressions_in_band(self, ablations):
        low, high = ablations.heavy_r2_range
        assert low > 0.80 and high <= 1.0

    def test_heavy_op_test_mape_band(self, ablations):
        """Paper: 2-10% held-out MAPE per heavy op type; we allow a longer
        tail for the rare quadratic ops."""
        values = sorted(ablations.heavy_test_mape.values())
        median = values[len(values) // 2]
        assert median < 0.10

    def test_cost_savings_vs_strategies(self, ablations):
        """Paper: Ceer saves up to 36%/44% vs cheapest/latest strategies."""
        assert ablations.strategy_cost_ratio["cheapest-instance"] > 1.3
        assert ablations.strategy_cost_ratio["latest-gpu (P3)"] > 1.4
