"""Property-based tests over randomly generated CNN architectures.

Hypothesis generates random-but-valid CNNs through the public builder API;
every generated model must satisfy the library's global invariants: the
graph validates, shapes agree, parameters are counted consistently,
simulation and feature extraction succeed, and Ceer's estimator produces
finite, monotone predictions.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder, graph_flops
from repro.profiling.features import features_for
from repro.sim.executor import run_iterations

# A random architecture spec: a list of layer directives.
_layer = st.sampled_from(["conv", "conv_bn", "pool", "avg_pool", "dropout"])
_architectures = st.lists(_layer, min_size=1, max_size=6)


def _build_random(layers, image=32, classes=7, batch=2):
    b = GraphBuilder("random", batch_size=batch, image_hw=(image, image),
                    num_classes=classes)
    x = b.input()
    channels = 8
    for directive in layers:
        if directive == "conv":
            x = b.conv(x, channels, 3)
            channels = min(channels * 2, 64)
        elif directive == "conv_bn":
            x = b.conv(x, channels, 3, batch_norm=True)
        elif directive in ("pool", "avg_pool"):
            if x.shape.height < 2:
                continue  # window no longer fits; skip the directive
            pool = b.max_pool if directive == "pool" else b.avg_pool
            x = pool(x, 2, 2)
        elif directive == "dropout":
            x = b.dropout(x, 0.5)
    x = b.global_avg_pool(x)
    logits = b.dense(x, classes, activation=None)
    return b.finalize(logits)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_architectures)
def test_random_models_validate_and_account_parameters(layers):
    graph = _build_random(layers)
    graph.validate()
    # Parameter count equals the sum over optimizer updates' outputs.
    updated = sum(
        op.outputs[0].num_elements for op in graph.ops_of_type("ApplyMomentum")
    )
    assert updated == graph.num_parameters
    assert graph.num_variables == len(graph.ops_of_type("ApplyMomentum"))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_architectures)
def test_random_models_simulate_with_finite_times(layers):
    graph = _build_random(layers)
    profile = run_iterations(graph, "T4", 5)
    assert math.isfinite(profile.compute_us) and profile.compute_us > 0
    assert all(t.mean_us > 0 for t in profile.timings)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_architectures)
def test_random_models_have_finite_nonneg_features_and_flops(layers):
    graph = _build_random(layers)
    assert graph_flops(graph.operations) > 0
    for op in graph:
        values = features_for(op)
        assert np.isfinite(values).all()
        assert all(v >= 0 for v in values)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_architectures, st.sampled_from(["V100", "K80", "T4", "M60"]))
def test_ceer_predictions_finite_and_monotone_in_gpus(ceer_small, layers, gpu):
    from repro.workloads.dataset import IMAGENET_6400, TrainingJob

    graph = _build_random(layers)
    job = TrainingJob(IMAGENET_6400, batch_size=graph.batch_size)
    predictions = [
        ceer_small.predict_training(graph, gpu, k, job) for k in (1, 2, 4)
    ]
    for p in predictions:
        assert math.isfinite(p.total_us) and p.total_us > 0
        assert math.isfinite(p.cost_dollars) and p.cost_dollars > 0
    # More GPUs -> fewer iterations, monotone in k for a fixed job.
    iterations = [p.iterations for p in predictions]
    assert iterations == sorted(iterations, reverse=True)
    # Communication overhead grows with k.
    comms = [p.comm_overhead_us for p in predictions]
    assert comms == sorted(comms)
