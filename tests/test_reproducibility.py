"""Reproducibility guarantees: the whole pipeline is bit-deterministic.

The experiment suite's claims (EXPERIMENTS.md) are only auditable if a
re-run produces the same numbers. These tests pin that property at every
level: raw samples, profiles, fitted models, and end-to-end measurements.
"""

import numpy as np

from repro.core.fit import fit_ceer
from repro.core.persistence import estimator_to_dict
from repro.profiling.profiler import Profiler
from repro.sim.executor import run_iterations
from repro.sim.trainer import measure_training
from repro.workloads.dataset import IMAGENET_6400, TrainingJob

JOB = TrainingJob(IMAGENET_6400, batch_size=4)


class TestDeterminism:
    def test_profiles_identical_across_runs(self, tiny_graph):
        a = Profiler(n_iterations=40).profile(tiny_graph, "V100")
        b = Profiler(n_iterations=40).profile(tiny_graph, "V100")
        assert a.records == b.records

    def test_fitted_estimator_identical_across_runs(self):
        kwargs = dict(
            train_models=("inception_v1", "vgg_11", "resnet_50"),
            gpu_keys=("V100", "T4"),
            n_iterations=40,
            gpu_counts=(1, 2),
        )
        a = fit_ceer(**kwargs)
        b = fit_ceer(**kwargs)
        assert estimator_to_dict(a.estimator) == estimator_to_dict(b.estimator)

    def test_measurement_identical_across_runs(self, tiny_graph):
        a = measure_training(tiny_graph, "M60", 2, JOB, n_profile_iterations=30)
        b = measure_training(tiny_graph, "M60", 2, JOB, n_profile_iterations=30)
        assert a == b

    def test_iteration_extension_preserves_prefix_statistics(self, tiny_graph):
        """More iterations refine statistics without changing the underlying
        stream: the first-moment estimates stay within sampling error."""
        short = run_iterations(tiny_graph, "T4", 100)
        long = run_iterations(tiny_graph, "T4", 2000)
        short_means = np.array([t.mean_us for t in short.timings])
        long_means = np.array([t.mean_us for t in long.timings])
        assert np.allclose(short_means, long_means, rtol=0.25)

    def test_different_devices_different_streams(self, tiny_graph):
        a = run_iterations(tiny_graph, "V100", 20)
        b = run_iterations(tiny_graph, "T4", 20)
        assert [t.mean_us for t in a.timings] != [t.mean_us for t in b.timings]

    def test_seed_namespace_isolated_from_python_hash_seed(self, tiny_graph):
        """The RNG keying uses sha256, not hash(): results cannot depend on
        PYTHONHASHSEED. (Indirect check: repeated in-process runs already
        pass; here we pin a concrete sampled value as a regression anchor.)"""
        profile = run_iterations(tiny_graph, "V100", 10)
        anchor = profile.timings[10].mean_us
        again = run_iterations(tiny_graph, "V100", 10).timings[10].mean_us
        assert anchor == again
