"""Tests for workload descriptors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.workloads.dataset import (
    IMAGENET,
    IMAGENET_6400,
    IMAGENET_EPOCH,
    DatasetSpec,
    TrainingJob,
)


class TestDatasetSpec:
    def test_imagenet_constants(self):
        assert IMAGENET.num_samples == 1_200_000
        assert IMAGENET.num_classes == 1000
        assert IMAGENET_6400.num_samples == 6_400

    def test_rejects_empty_dataset(self):
        with pytest.raises(ReproError):
            DatasetSpec("empty", 0)


class TestTrainingJob:
    def test_paper_iteration_accounting(self):
        """Eq. (2): D / (k * B) iterations."""
        assert IMAGENET_EPOCH.iterations(1) == 1_200_000 / 32
        assert IMAGENET_EPOCH.iterations(4) == 1_200_000 / 128

    def test_epochs_multiply(self):
        job = TrainingJob(IMAGENET_6400, batch_size=32, epochs=3)
        assert job.iterations(1) == 600

    def test_rejects_bad_batch(self):
        with pytest.raises(ReproError):
            TrainingJob(IMAGENET, batch_size=0)

    def test_rejects_bad_epochs(self):
        with pytest.raises(ReproError):
            TrainingJob(IMAGENET, epochs=0)

    def test_rejects_bad_gpu_count(self):
        with pytest.raises(ReproError):
            IMAGENET_EPOCH.iterations(0)

    @given(st.integers(1, 16), st.integers(1, 512))
    def test_iterations_inverse_in_k(self, k, batch):
        job = TrainingJob(IMAGENET, batch_size=batch)
        assert job.iterations(k) == pytest.approx(job.iterations(1) / k)
