#!/usr/bin/env python
"""Microbenchmark for the vectorized prediction engine.

Times the scalar per-op reference path against the compiled engine on
three axes and emits a JSON report so the perf trajectory is tracked in
version control from PR 1 onward:

* single-graph prediction latency (one CNN, one GPU) and ops/sec;
* full recommender-sweep latency (16 (GPU model, k) candidates), both
  cold (first query: build + compile + evaluate) and warm (served from
  the engine's caches);
* zoo-wide scalar/vectorized equivalence (max relative difference).

Headless usage::

    PYTHONPATH=src python tools/bench_engine.py --json BENCH_predict_engine.json

The default fit uses reduced profiling iterations — prediction latency is
independent of how many iterations trained the regressions, and this
keeps the tool runnable in CI in well under a minute.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.engine import PredictionEngine, compile_graph
from repro.core.estimator import CeerEstimator
from repro.core.fit import fit_ceer
from repro.core.recommend import Recommender
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import build_model, model_names
from repro.obs.export import write_trace
from repro.obs.spans import disable_tracing, enable_tracing
from repro.workloads.dataset import IMAGENET, TrainingJob


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_single_graph(compute_models, graph, gpu_key: str, repeats: int) -> dict:
    scalar_s = best_of(
        lambda: compute_models.predict_graph_us(graph, gpu_key), repeats
    )
    compile_s = best_of(lambda: compile_graph(graph, compute_models), repeats)
    engine = PredictionEngine(compute_models)

    def cold():
        engine.clear()
        engine.predict_graph_us(graph, gpu_key)

    cold_s = best_of(cold, repeats)
    engine.predict_graph_us(graph, gpu_key)  # ensure compiled

    def warm_eval():
        entry = engine._entry(graph)
        entry.totals.clear()
        engine.predict_graph_us(graph, gpu_key)

    warm_s = best_of(warm_eval, repeats)
    return {
        "gpu_key": gpu_key,
        "num_ops": len(graph),
        "scalar_us": scalar_s * 1e6,
        "compile_us": compile_s * 1e6,
        "engine_cold_us": cold_s * 1e6,
        "engine_warm_us": warm_s * 1e6,
        "speedup_warm": scalar_s / warm_s,
        "ops_per_sec_scalar": len(graph) / scalar_s,
        "ops_per_sec_engine": len(graph) / warm_s,
    }


def bench_sweep(fitted, model: str, job: TrainingJob, repeats: int) -> dict:
    compute_models = fitted.estimator.compute_models
    comm_model = fitted.estimator.comm_model
    scalar_rec = Recommender(
        CeerEstimator(compute_models, comm_model, use_engine=False)
    )
    engine_est = CeerEstimator(compute_models, comm_model)
    engine_rec = Recommender(engine_est)

    scalar_s = best_of(lambda: scalar_rec.sweep(model, job), repeats)

    def cold():
        engine_est.engine.clear()
        engine_rec.sweep(model, job)

    cold_s = best_of(cold, repeats)
    warm_s = best_of(lambda: engine_rec.sweep(model, job), repeats)
    n_candidates = len(engine_rec.sweep(model, job))
    return {
        "model": model,
        "candidates": n_candidates,
        "scalar_ms": scalar_s * 1e3,
        "engine_cold_ms": cold_s * 1e3,
        "engine_warm_ms": warm_s * 1e3,
        "speedup_cold": scalar_s / cold_s,
        "speedup_warm": scalar_s / warm_s,
        "cache_info": engine_est.engine.cache_info(),
    }


def check_equivalence(compute_models, batch_size: int) -> dict:
    """Max |engine - scalar| / scalar over the zoo x GPU x flags matrix."""
    engine = PredictionEngine(compute_models)
    flag_configs = ({}, {"heavy_only": True}, {"include_light": False})
    worst = 0.0
    n_checked = 0
    for name in model_names():
        graph = build_model(name, batch_size=batch_size)
        for gpu_key in GPU_KEYS:
            for flags in flag_configs:
                scalar = compute_models.predict_graph_us(graph, gpu_key, **flags)
                vector = engine.predict_graph_us(graph, gpu_key, **flags)
                if scalar > 0:
                    worst = max(worst, abs(vector - scalar) / scalar)
                n_checked += 1
    return {
        "max_rel_diff": worst,
        "checked": n_checked,
        "models": len(model_names()),
        "gpu_keys": len(GPU_KEYS),
        "within_1e-6": worst <= 1e-6,
    }


def run(args: argparse.Namespace) -> dict:
    t0 = time.perf_counter()
    fitted = fit_ceer(n_iterations=args.iterations)
    fit_s = time.perf_counter() - t0
    compute_models = fitted.estimator.compute_models
    job = TrainingJob(IMAGENET, batch_size=args.batch_size)
    graph = build_model(args.model, batch_size=args.batch_size)

    if args.trace_out is not None:
        # Traced demo pass, separate from the timed runs above/below so
        # instrumentation never skews the reported numbers: one cold and
        # one warm sweep recorded as spans for the CI trace artifact.
        estimator = CeerEstimator(compute_models, fitted.estimator.comm_model)
        tracer = enable_tracing()
        try:
            recommender = Recommender(estimator)
            recommender.sweep(args.model, job)  # cold: build + compile + eval
            recommender.sweep(args.model, job)  # warm: engine caches hit
        finally:
            disable_tracing()
        write_trace(args.trace_out, tracer)
        print(f"wrote trace of cold+warm sweep to {args.trace_out}")

    report = {
        "benchmark": "predict_engine",
        "config": {
            "model": args.model,
            "batch_size": args.batch_size,
            "fit_iterations": args.iterations,
            "repeats": args.repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "fit_seconds": fit_s,
        "single_graph": bench_single_graph(
            compute_models, graph, "V100", args.repeats
        ),
        "sweep": bench_sweep(fitted, args.model, job, args.repeats),
        "equivalence": check_equivalence(compute_models, args.batch_size),
    }
    return report


def render(report: dict) -> str:
    s = report["single_graph"]
    w = report["sweep"]
    e = report["equivalence"]
    return "\n".join(
        [
            f"predict-engine benchmark ({report['config']['model']}, "
            f"{s['num_ops']} ops, batch {report['config']['batch_size']})",
            f"  single graph:  scalar {s['scalar_us']:9.1f} us | "
            f"engine warm {s['engine_warm_us']:7.1f} us | "
            f"compile {s['compile_us']:7.1f} us | "
            f"{s['speedup_warm']:.0f}x",
            f"  ops/sec:       scalar {s['ops_per_sec_scalar']:9.0f} | "
            f"engine {s['ops_per_sec_engine']:12.0f}",
            f"  16-cand sweep: scalar {w['scalar_ms']:9.2f} ms | "
            f"cold {w['engine_cold_ms']:7.3f} ms ({w['speedup_cold']:.0f}x) | "
            f"warm {w['engine_warm_ms']:7.3f} ms ({w['speedup_warm']:.0f}x)",
            f"  equivalence:   max rel diff {e['max_rel_diff']:.2e} over "
            f"{e['checked']} zoo x GPU x flag checks "
            f"({'OK' if e['within_1e-6'] else 'FAIL'} at 1e-6)",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--model", default="inception_v3",
                        help="zoo model for the latency/sweep benchmarks")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--iterations", type=int, default=60,
                        help="profiling iterations for the fit (latency is "
                             "independent of this; low keeps CI fast)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (best-of)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write a Chrome trace-event JSON of one "
                             "cold+warm sweep (untimed demo pass)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run(args)
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["equivalence"]["within_1e-6"]:
        return 1
    if report["sweep"]["speedup_cold"] < 10.0:
        print("WARNING: cold sweep speedup below the 10x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
