#!/usr/bin/env python
"""Benchmark the parallel profiling fan-out against the serial sweep.

Times one profiling sweep (the paper's expensive measurement stage —
Section III profiles every (CNN, GPU) cell independently) twice into two
fresh workspaces: once with ``jobs=1`` (the serial reference) and once
with ``jobs=N`` worker processes, then byte-compares the resulting
artifact trees — the determinism guarantee (``--jobs N`` == ``--jobs 1``,
byte for byte) is asserted on every benchmark run, not just in tests.

Emits a JSON report (committed as ``BENCH_fanout.json``) recording the
wall-clocks, the speedup ratio, and — critically — the machine's CPU
count: a speedup ratio only means something relative to the cores that
were available, so ``tools/perf_gate.py`` enforces the 2x floor only on
hosts with >= 4 cores and compares ratios across reports only when their
core counts match.

Headless usage::

    PYTHONPATH=src python tools/bench_fanout.py --json BENCH_fanout.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.artifacts.workspace import Workspace
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TRAIN_MODELS


def _tree_bytes(directory: Path) -> dict:
    return {
        str(path.relative_to(directory)): path.read_bytes()
        for path in sorted(directory.rglob("*.json"))
    }


def bench_sweep(models, gpu_keys, iterations: int, jobs: int) -> dict:
    """Time serial vs parallel sweeps into fresh workspaces; verify bytes."""
    serial_dir = Path(tempfile.mkdtemp(prefix="bench-fanout-serial-"))
    parallel_dir = Path(tempfile.mkdtemp(prefix="bench-fanout-parallel-"))
    try:
        t0 = time.perf_counter()
        Workspace(serial_dir).profiles(models, gpu_keys, iterations, jobs=1)
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        Workspace(parallel_dir).profiles(models, gpu_keys, iterations, jobs=jobs)
        parallel_s = time.perf_counter() - t0

        serial_tree = _tree_bytes(serial_dir)
        parallel_tree = _tree_bytes(parallel_dir)
        byte_identical = serial_tree == parallel_tree
    finally:
        shutil.rmtree(serial_dir, ignore_errors=True)
        shutil.rmtree(parallel_dir, ignore_errors=True)
    return {
        "cells": len(models) * len(gpu_keys),
        "artifacts": len(serial_tree),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "byte_identical": byte_identical,
    }


def run(args: argparse.Namespace) -> dict:
    models = list(TRAIN_MODELS[: args.models])
    gpu_keys = list(GPU_KEYS)
    return {
        "benchmark": "fanout",
        "config": {
            "models": models,
            "gpus": gpu_keys,
            "iterations": args.iterations,
            "jobs": args.jobs,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
        },
        "sweep": bench_sweep(models, gpu_keys, args.iterations, args.jobs),
    }


def render(report: dict) -> str:
    config = report["config"]
    sweep = report["sweep"]
    return "\n".join([
        f"fanout benchmark ({len(config['models'])} models x "
        f"{len(config['gpus'])} GPUs = {sweep['cells']} cells, "
        f"{config['iterations']} iterations, jobs={config['jobs']}, "
        f"{config['cpu_count']} cpu core(s))",
        f"  serial sweep:   {sweep['serial_s']:7.2f} s",
        f"  parallel sweep: {sweep['parallel_s']:7.2f} s  "
        f"({sweep['speedup']:.2f}x)",
        f"  artifact trees: {sweep['artifacts']} files, "
        f"{'byte-identical' if sweep['byte_identical'] else 'DIVERGED'}",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--models", type=int, default=4,
                        help="how many training-zoo CNNs to sweep (default 4)")
    parser.add_argument("--iterations", type=int, default=40,
                        help="profiling iterations per cell (speedup is "
                             "independent of this; low keeps CI fast)")
    parser.add_argument("--jobs", type=int,
                        default=max(2, min(4, os.cpu_count() or 1)),
                        help="worker processes for the parallel sweep "
                             "(default: min(cpu count, 4), at least 2)")
    args = parser.parse_args(argv)
    if args.models < 1 or args.iterations < 2 or args.jobs < 2:
        parser.error("--models >= 1, --iterations >= 2, --jobs >= 2 required")

    report = run(args)
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["sweep"]["byte_identical"]:
        print("FAIL: parallel sweep artifacts diverged from serial",
              file=sys.stderr)
        return 1
    # The speedup *floor* is enforced by tools/perf_gate.py, which knows
    # the baseline's core count; a 1-core container honestly reports ~1x.
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
