#!/usr/bin/env python
"""Load-test harness for the recommendation service (``repro serve``).

Drives the serving app with concurrent client workers over a mixed
query distribution (predict/recommend/pareto across models, GPUs and
objectives) and emits a JSON report (``BENCH_serve.json``) with:

* **load** — sustained qps, p50/p99 latency, error count, and the
  coalescing/cache hit breakdown under the mixed workload;
* **warm_vs_cold** — first-query latency on an unwarmed snapshot
  (pays graph build + compile + coefficient stacking) vs an evaluation
  on a warmed one, as a machine-independent ratio;
* **coalesce** — wall time of a burst of N *distinct* concurrent
  queries vs N *identical* ones (which must collapse to a single
  evaluation), plus the counter-verified evaluation count;
* **hotswap** — a client fleet hammering the service across repeated
  ``/admin/reload`` swaps: zero dropped requests, every response from a
  coherent generation.

Two transports:

* default (in-process) — builds the ASGI app directly and awaits it;
  deterministic, no sockets, what the perf gate compares;
* ``--url http://host:port`` — speaks real HTTP/1.1 with keep-alive to
  an already-running ``repro serve`` (CI's serve job smoke), running the
  load and per-endpoint sanity sections only.

Headless usage::

    PYTHONPATH=src python tools/bench_serve.py --json BENCH_serve.json
    PYTHONPATH=src python tools/bench_serve.py --smoke --url http://127.0.0.1:8100
"""

from __future__ import annotations

# Benchmarks time wall-clock by design.
# staticcheck: ignore-file[determinism]

import argparse
import asyncio
import json
import platform
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.units import MS_PER_S

#: The mixed query pool is drawn with this seed: every run replays the
#: same request sequence, so reports are comparable across commits.
POOL_SEED = 20200827  # IISWC 2020 paper id, arbitrary but fixed

MODELS = ("alexnet", "resnet_50", "vgg_16", "inception_v3")
GPUS = ("V100", "K80", "T4", "M60")


def build_query_pool(n_unique: int) -> List[Tuple[str, Dict[str, Any]]]:
    """``n_unique`` distinct (endpoint, body) pairs: ~60% predict,
    ~30% recommend, ~10% pareto, cycled deterministically."""
    rng = random.Random(POOL_SEED)
    pool: List[Tuple[str, Dict[str, Any]]] = []
    for i in range(n_unique):
        roll = rng.random()
        model = MODELS[i % len(MODELS)]
        if roll < 0.6:
            pool.append(("/predict", {
                "model": model,
                "gpu": GPUS[rng.randrange(len(GPUS))],
                "gpus": rng.randrange(1, 5),
                "batch": rng.choice((16, 32, 64)),
            }))
        elif roll < 0.9:
            pool.append(("/recommend", {
                "model": model,
                "objective": rng.choice(("min-cost", "min-time")),
                "batch": rng.choice((16, 32)),
            }))
        else:
            pool.append(("/pareto", {"model": model,
                                     "batches": [rng.choice((16, 32))]}))
    return pool


# ---------------------------------------------------------------------------
# Transports: both expose  async request(method, path, body) -> (status, doc)
# ---------------------------------------------------------------------------
class AsgiTransport:
    """Awaits the app object directly — no sockets, no serialization skew."""

    def __init__(self, app) -> None:
        self.app = app

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None) -> Tuple[int, Any]:
        raw = json.dumps(body).encode() if body is not None else b""
        status_box: Dict[str, int] = {}
        chunks: List[bytes] = []

        async def receive() -> Dict[str, Any]:
            return {"type": "http.request", "body": raw, "more_body": False}

        async def send(message: Dict[str, Any]) -> None:
            if message["type"] == "http.response.start":
                status_box["status"] = message["status"]
            else:
                chunks.append(message.get("body", b""))

        scope = {"type": "http", "method": method, "path": path,
                 "query_string": b""}
        await self.app(scope, receive, send)
        text = b"".join(chunks).decode("utf-8", "replace")
        try:
            return status_box.get("status", 0), json.loads(text)
        except ValueError:
            return status_box.get("status", 0), text

    async def close(self) -> None:
        pass


class HttpTransport:
    """One keep-alive HTTP/1.1 connection per worker to a live server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None) -> Tuple[int, Any]:
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        raw = json.dumps(body).encode() if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"host: {self.host}:{self.port}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(raw)}\r\n\r\n"
        ).encode("ascii")
        self._writer.write(head + raw)
        await self._writer.drain()
        status_line = await self._reader.readuntil(b"\r\n")
        status = int(status_line.split(b" ")[1])
        content_length = 0
        close_after = False
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line.strip().partition(b":")
            if name.strip().lower() == b"content-length":
                content_length = int(value.strip())
            if (name.strip().lower() == b"connection"
                    and value.strip().lower() == b"close"):
                close_after = True
        payload = await self._reader.readexactly(content_length)
        if close_after:
            await self.close()
        try:
            return status, json.loads(payload.decode("utf-8", "replace"))
        except ValueError:
            return status, payload.decode("utf-8", "replace")

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = None
        self._writer = None


def parse_url(url: str) -> Tuple[str, int]:
    from urllib.parse import urlparse

    parsed = urlparse(url)
    if parsed.scheme not in ("http", "") or parsed.hostname is None:
        raise ValueError(f"--url must be http://host:port, got {url!r}")
    return parsed.hostname, parsed.port or 80


# ---------------------------------------------------------------------------
# Benchmark sections
# ---------------------------------------------------------------------------
async def bench_load(make_transport, workers: int, requests_per_worker: int,
                     pool, duplication: int) -> Dict[str, Any]:
    """The mixed sustained-load section.

    Each worker walks a deterministic per-worker schedule over the query
    pool; ``duplication`` controls how many consecutive requests reuse
    one pool entry (higher -> more cache/coalesce traffic, like real
    clients asking popular questions).
    """
    latencies_ms: List[float] = []
    errors: List[Any] = []

    async def worker(wid: int) -> None:
        transport = make_transport()
        rng = random.Random(POOL_SEED + wid)
        try:
            for i in range(requests_per_worker):
                path, body = pool[rng.randrange(len(pool) // duplication)
                                  * duplication % len(pool)]
                t0 = time.perf_counter()
                status, doc = await transport.request("POST", path, body)
                latencies_ms.append((time.perf_counter() - t0) * MS_PER_S)
                if status != 200:
                    errors.append((path, status, doc))
        finally:
            await transport.close()

    t0 = time.perf_counter()
    await asyncio.gather(*[worker(w) for w in range(workers)])
    wall_s = time.perf_counter() - t0
    total = workers * requests_per_worker
    latencies_ms.sort()
    return {
        "workers": workers,
        "requests": total,
        "errors": len(errors),
        "error_sample": errors[:3],
        "wall_s": wall_s,
        "qps": total / wall_s,
        "p50_ms": statistics.median(latencies_ms),
        "p99_ms": latencies_ms[min(len(latencies_ms) - 1,
                                   int(len(latencies_ms) * 0.99))],
        "max_ms": latencies_ms[-1],
    }


async def bench_warm_vs_cold(estimator_path: str) -> Dict[str, Any]:
    """First-query latency (compile path) vs a warmed evaluation.

    Both sides are LRU misses that run a real evaluation; the cold side
    additionally pays graph build + compile + coefficient stacking. The
    ratio is machine-independent: both halves run in this process.
    """
    from repro.serve.app import ServeApp, ServeState

    state = ServeState(estimator_path, warm=False)
    transport = AsgiTransport(ServeApp(state))
    body = {"model": "resnet_101", "gpu": "V100", "gpus": 2}
    try:
        t0 = time.perf_counter()
        status, _ = await transport.request("POST", "/predict", body)
        cold_s = time.perf_counter() - t0
        assert status == 200, status
        warm_s = float("inf")
        for i in range(5):
            # vary a no-op field re-dimension (samples) to force fresh
            # evaluations through warm caches rather than LRU hits
            varied = dict(body, samples=1_200_000 + i + 1)
            t0 = time.perf_counter()
            status, _ = await transport.request("POST", "/predict", varied)
            warm_s = min(warm_s, time.perf_counter() - t0)
            assert status == 200, status
        t0 = time.perf_counter()
        status, _ = await transport.request("POST", "/predict", body)
        hit_s = time.perf_counter() - t0
        assert status == 200, status
    finally:
        state.close()
    return {
        "cold_ms": cold_s * MS_PER_S,
        "warm_eval_ms": warm_s * MS_PER_S,
        "cache_hit_ms": hit_s * MS_PER_S,
        "warm_vs_cold_ratio": cold_s / warm_s,
    }


async def bench_coalesce(estimator_path: str, burst: int) -> Dict[str, Any]:
    """N distinct concurrent queries vs N identical ones.

    The identical burst must collapse to exactly one evaluation
    (counter-asserted); the wall-clock ratio distinct/identical is the
    machine-independent payoff of coalescing.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.app import ServeApp, ServeState

    registry = MetricsRegistry()
    state = ServeState(estimator_path, warm=True, models=("resnet_50",),
                       registry=registry)
    transport = AsgiTransport(ServeApp(state))
    try:
        distinct = [
            {"model": "resnet_50", "gpu": GPUS[i % len(GPUS)],
             "gpus": 1 + i % 4, "samples": 1_200_000 + i}
            for i in range(burst)
        ]
        t0 = time.perf_counter()
        results = await asyncio.gather(*[
            transport.request("POST", "/predict", b) for b in distinct
        ])
        distinct_s = time.perf_counter() - t0
        assert all(s == 200 for s, _ in results), results[0]

        def eval_count() -> int:
            return sum(
                r["value"] for r in registry.snapshot()
                if r["name"] == "serve.evaluations"
            )

        before = eval_count()
        same = {"model": "resnet_50", "gpu": "V100", "gpus": 3,
                "samples": 2_400_000}
        t0 = time.perf_counter()
        results = await asyncio.gather(*[
            transport.request("POST", "/predict", same) for _ in range(burst)
        ])
        identical_s = time.perf_counter() - t0
        assert all(s == 200 for s, _ in results), results[0]
        evaluations = eval_count() - before
        coalesced = sum(
            r["value"] for r in registry.snapshot()
            if r["name"] == "serve.coalesced"
        )
    finally:
        state.close()
    return {
        "burst": burst,
        "distinct_wall_ms": distinct_s * MS_PER_S,
        "identical_wall_ms": identical_s * MS_PER_S,
        "coalesce_ratio": distinct_s / identical_s,
        "identical_evaluations": evaluations,
        "coalesced_total": coalesced,
        "single_evaluation": evaluations == 1,
    }


async def bench_hotswap(estimator_path: str, workers: int,
                        reloads: int) -> Dict[str, Any]:
    """Client fleet across live reloads: nothing drops, nothing mixes.

    Clients hammer the service *until every swap has completed* — the
    fleet is guaranteed to overlap each reload — and every successful
    response must carry a coherent generation stamp.
    """
    from repro.serve.app import ServeApp, ServeState

    state = ServeState(estimator_path, warm=True, models=("alexnet",))
    transport_app = ServeApp(state)
    pool = [
        ("/predict", {"model": "alexnet", "gpu": GPUS[i % len(GPUS)],
                      "gpus": 1 + i % 4})
        for i in range(16)
    ]
    dropped: List[Any] = []
    generations: set = set()
    done = 0
    stop = asyncio.Event()

    async def client(wid: int) -> None:
        nonlocal done
        transport = AsgiTransport(transport_app)
        rng = random.Random(POOL_SEED + wid)
        while not stop.is_set():
            path, body = pool[rng.randrange(len(pool))]
            status, doc = await transport.request("POST", path, body)
            if status != 200:
                dropped.append((path, status, doc))
            else:
                generations.add(doc["generation"])
            done += 1
            # A cache hit completes without suspending; yield so the
            # swapper (and other clients) get scheduled between requests.
            await asyncio.sleep(0)

    async def swapper() -> None:
        try:
            for _ in range(reloads):
                # let some traffic land on the current generation first
                await asyncio.sleep(0.02)
                await state.reload()
            await asyncio.sleep(0.02)  # traffic on the final generation
        finally:
            stop.set()

    try:
        t0 = time.perf_counter()
        await asyncio.gather(*[client(w) for w in range(workers)], swapper())
        wall_s = time.perf_counter() - t0
    finally:
        state.close()
    return {
        "workers": workers,
        "requests": done,
        "reloads_requested": reloads,
        "dropped": len(dropped),
        "dropped_sample": dropped[:3],
        "generations_seen": sorted(generations),
        "final_generation": state.holder.generation,
        "overlapped_swaps": len(generations) > 1,
        "wall_s": wall_s,
    }


async def bench_endpoints(make_transport) -> Dict[str, Any]:
    """One request per endpoint — the CI smoke sanity section."""
    transport = make_transport()
    results: Dict[str, Any] = {}
    try:
        status, doc = await transport.request("GET", "/healthz")
        results["healthz"] = {"status": status,
                              "generation": doc.get("generation")}
        for path, body in (
            ("/predict", {"model": "alexnet", "gpu": "V100"}),
            ("/recommend", {"model": "resnet_50"}),
            ("/pareto", {"model": "alexnet"}),
        ):
            status, doc = await transport.request("POST", path, body)
            results[path.lstrip("/")] = {"status": status}
        status, _ = await transport.request("GET", "/metrics")
        results["metrics"] = {"status": status}
        results["all_ok"] = all(
            section["status"] == 200 for section in results.values()
            if isinstance(section, dict)
        )
    finally:
        await transport.close()
    return results


# ---------------------------------------------------------------------------
def prepare_estimator(args) -> str:
    if args.estimator:
        return args.estimator
    from repro.core.fit import fit_ceer
    from repro.core.persistence import save_estimator

    path = Path(tempfile.mkdtemp(prefix="bench-serve-")) / "estimator.json"
    t0 = time.perf_counter()
    fitted = fit_ceer(n_iterations=args.iterations)
    save_estimator(fitted.estimator, path)
    print(f"fit estimator in {time.perf_counter() - t0:.1f}s -> {path}")
    return str(path)


async def run(args) -> Dict[str, Any]:
    report: Dict[str, Any] = {
        "benchmark": "serve",
        "config": {
            "mode": "url" if args.url else "in-process",
            "smoke": args.smoke,
            "workers": args.workers,
            "requests_per_worker": args.requests,
            "pool_size": args.pool,
            "duplication": args.duplication,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    pool = build_query_pool(args.pool)

    if args.url:
        host, port = parse_url(args.url)

        def make_transport():
            return HttpTransport(host, port)

        report["endpoints"] = await bench_endpoints(make_transport)
        report["load"] = await bench_load(
            make_transport, args.workers, args.requests, pool,
            args.duplication,
        )
        return report

    estimator_path = prepare_estimator(args)
    from repro.serve.app import ServeApp, ServeState

    state = ServeState(estimator_path, warm=True, models=MODELS)
    app = ServeApp(state)

    def make_transport():
        return AsgiTransport(app)

    try:
        report["endpoints"] = await bench_endpoints(make_transport)
        report["load"] = await bench_load(
            make_transport, args.workers, args.requests, pool,
            args.duplication,
        )
    finally:
        state.close()
    report["warm_vs_cold"] = await bench_warm_vs_cold(estimator_path)
    report["coalesce"] = await bench_coalesce(estimator_path, args.burst)
    report["hotswap"] = await bench_hotswap(
        estimator_path, workers=args.workers,
        reloads=2 if args.smoke else 4,
    )
    return report


def render(report: Dict[str, Any]) -> str:
    lines = [f"serve benchmark ({report['config']['mode']})"]
    endpoints = report.get("endpoints", {})
    lines.append(
        f"  endpoints: "
        f"{'OK' if endpoints.get('all_ok') else 'FAIL ' + json.dumps(endpoints)}"
    )
    load = report.get("load", {})
    if load:
        lines.append(
            f"  load: {load['requests']} requests x {load['workers']} workers "
            f"-> {load['qps']:.0f} qps, p50 {load['p50_ms']:.2f} ms, "
            f"p99 {load['p99_ms']:.2f} ms, {load['errors']} errors"
        )
    if "warm_vs_cold" in report:
        w = report["warm_vs_cold"]
        lines.append(
            f"  warm-vs-cold: cold {w['cold_ms']:.1f} ms, warm eval "
            f"{w['warm_eval_ms']:.2f} ms, LRU hit {w['cache_hit_ms']:.3f} ms "
            f"({w['warm_vs_cold_ratio']:.1f}x)"
        )
    if "coalesce" in report:
        c = report["coalesce"]
        lines.append(
            f"  coalesce: {c['burst']} distinct {c['distinct_wall_ms']:.1f} ms "
            f"vs identical {c['identical_wall_ms']:.1f} ms "
            f"({c['coalesce_ratio']:.1f}x), evaluations for identical burst: "
            f"{c['identical_evaluations']} "
            f"{'OK' if c['single_evaluation'] else 'FAIL'}"
        )
    if "hotswap" in report:
        h = report["hotswap"]
        lines.append(
            f"  hotswap: {h['requests']} requests across "
            f"{h['final_generation'] - 1} swaps, dropped {h['dropped']} "
            f"{'OK' if h['dropped'] == 0 else 'FAIL'}, generations "
            f"{h['generations_seen']}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--url", default=None,
                        help="bench a running server at http://host:port "
                             "instead of in-process (load + sanity only)")
    parser.add_argument("--estimator", default=None,
                        help="fitted estimator JSON (default: fit one)")
    parser.add_argument("--iterations", type=int, default=60,
                        help="profiling iterations when fitting (default 60)")
    parser.add_argument("--workers", type=int, default=8,
                        help="concurrent client workers")
    parser.add_argument("--requests", type=int, default=400,
                        help="requests per worker in the load section")
    parser.add_argument("--pool", type=int, default=64,
                        help="distinct queries in the mixed pool")
    parser.add_argument("--duplication", type=int, default=4,
                        help="consecutive pool entries that collapse to one "
                             "(higher -> hotter cache)")
    parser.add_argument("--burst", type=int, default=16,
                        help="burst size for the coalescing section")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI smoke")
    args = parser.parse_args(argv)
    if args.smoke:
        args.workers = min(args.workers, 4)
        args.requests = min(args.requests, 40)
        args.burst = min(args.burst, 8)
    for name in ("workers", "requests", "pool", "duplication", "burst"):
        if getattr(args, name) < 1:
            parser.error(f"--{name} must be >= 1")

    report = asyncio.run(run(args))
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")

    failures = []
    if not report.get("endpoints", {}).get("all_ok"):
        failures.append("an endpoint sanity request failed")
    if report.get("load", {}).get("errors"):
        failures.append(f"{report['load']['errors']} load requests failed")
    if "coalesce" in report and not report["coalesce"]["single_evaluation"]:
        failures.append(
            f"identical burst ran {report['coalesce']['identical_evaluations']}"
            f" evaluations (expected 1)"
        )
    if "hotswap" in report and report["hotswap"]["dropped"]:
        failures.append(
            f"hot swap dropped {report['hotswap']['dropped']} request(s)"
        )
    if "hotswap" in report and not report["hotswap"]["overlapped_swaps"]:
        failures.append("hot-swap traffic never overlapped a reload")
    for failure in failures:
        print(f"WARNING: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
