#!/usr/bin/env python
"""Microbenchmark for the incremental spot re-rank layer.

Times a warmed full-catalog re-sweep at a tick's spot prices (build a
:class:`~repro.core.batch.SweepPlan` around the tick's pricing, run
:func:`~repro.core.batch.evaluate_sweep` with hot engine caches — what
every price tick would cost without the re-rank layer) against
:meth:`~repro.core.rerank.SpotRerankSession.rerank` (a tensor re-scale
over the session's cached grids), and verifies across several ticks that
the two paths produce *bit-identical* rankings: same candidate order,
same scores, where the oracle is the full re-sweep's predictions scored
through :class:`~repro.core.recommend.SpotRiskObjective` under a stable
sort. It also exercises the mask-not-raise contract: a spec-only GPU
admitted *without* a spot ratio joins the sweep, and spot pricing masks
its cells instead of raising.

Headless usage::

    PYTHONPATH=src python tools/bench_spot_rerank.py --json BENCH_spot_rerank.json

The batch grid is wider than the default sweep's (32 sizes) so the spot
candidate set clears the 1000-candidate floor the perf gate enforces.
"""

from __future__ import annotations

# staticcheck: ignore-file[determinism] — a wall-clock benchmark times by definition

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.cloud.catalog import admit_gpu, clear_admitted
from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND, SPOT
from repro.cloud.spotsim import SpotMarket
from repro.core.batch import SweepPlan, evaluate_sweep
from repro.core.estimator import CeerEstimator
from repro.core.fit import fit_ceer
from repro.core.preempt import DEFAULT_PREEMPTION
from repro.core.recommend import SpotRiskObjective
from repro.core.rerank import SpotRerankSession
from repro.hardware.gpus import GPU_KEYS, GpuSpec
from repro.units import MS_PER_S
from repro.workloads.dataset import IMAGENET, TrainingJob

#: 32 batch sizes x the priceable (GPU, count) grid -> 1000+ candidates.
BENCH_BATCH_SIZES = tuple(range(8, 264, 8))


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fresh_estimator(fitted) -> CeerEstimator:
    return CeerEstimator(
        fitted.estimator.compute_models, fitted.estimator.comm_model
    )


def oracle_ranking(estimator, model, job, market, risk_aversion):
    """The full re-sweep ranking a tick would compute without the layer."""
    plan = SweepPlan.full_catalog(
        batch_sizes=BENCH_BATCH_SIZES, pricings=(market.pricing(),)
    )
    result = evaluate_sweep(estimator, model, job, plan)
    hazards = market.hazards_per_hr()
    preds = []
    for (p, g, k, b) in result.iter_candidates():
        pred = result.prediction(p, g, k, b)
        preds.append(replace(
            pred,
            hazard_per_hr=hazards[plan.gpu_keys[g]],
            preempt_overhead_iterations=DEFAULT_PREEMPTION.overhead_iterations,
        ))
    objective = SpotRiskObjective(risk_aversion_usd_per_hr=risk_aversion)
    return sorted(preds, key=objective.score), objective


def check_equivalence(fitted, model, job, seed, n_ticks, risk_aversion):
    """Bit-exact ranking agreement between re-rank and full re-sweep."""
    estimator = _fresh_estimator(fitted)
    session = SpotRerankSession.from_estimator(
        estimator, model, job, batch_sizes=BENCH_BATCH_SIZES
    )
    market = SpotMarket(seed=seed)
    mismatches = 0
    scores_equal = True
    checked = 0
    for tick in range(n_ticks):
        if tick > 0:
            market.tick()
        ranking = session.rerank(
            market.ratios(), market.hazards_per_hr(),
            risk_aversion_usd_per_hr=risk_aversion,
        )
        oracle, objective = oracle_ranking(
            estimator, model, job, market, risk_aversion
        )
        if len(oracle) != ranking.n_candidates:
            raise SystemExit(
                f"candidate sets disagree at tick {tick}: rerank has "
                f"{ranking.n_candidates}, full re-sweep has {len(oracle)}"
            )
        fast = ranking.predictions()
        for got, ref in zip(fast, oracle):
            checked += 1
            if (got.instance_name, got.batch_size) != (
                    ref.instance_name, ref.batch_size):
                mismatches += 1
        if not np.array_equal(
                ranking.scores,
                np.array([objective.score(p) for p in oracle])):
            scores_equal = False
    return {
        "ticks_checked": n_ticks,
        "candidates": checked // n_ticks,
        "ranking_mismatches": mismatches,
        "rankings_identical": mismatches == 0,
        "scores_bitwise_equal": scores_equal,
    }


def bench_rerank(fitted, model, job, seed, repeats):
    """Warmed full re-sweep vs incremental re-rank at one tick."""
    estimator = _fresh_estimator(fitted)
    session = SpotRerankSession.from_estimator(
        estimator, model, job, batch_sizes=BENCH_BATCH_SIZES
    )
    market = SpotMarket(seed=seed)
    market.tick()
    pricing = market.pricing()
    ratios = market.ratios()
    hazards = market.hazards_per_hr()

    def full_resweep():
        # A new plan per tick (the pricing changed), engine caches hot —
        # the honest per-tick cost of not having the re-rank layer.
        plan = SweepPlan.full_catalog(
            batch_sizes=BENCH_BATCH_SIZES, pricings=(pricing,)
        )
        evaluate_sweep(estimator, model, job, plan)

    full_resweep()  # prime compute/comm caches
    resweep_s = best_of(full_resweep, repeats)
    rerank_s = best_of(
        lambda: session.rerank(ratios, hazards), repeats
    )
    ranking = session.rerank(ratios, hazards)
    return {
        "candidates": ranking.n_candidates,
        "resweep_warm_ms": resweep_s * MS_PER_S,
        "rerank_ms": rerank_s * MS_PER_S,
        "speedup": resweep_s / rerank_s,
    }


def check_admitted_masking(fitted, model, job):
    """Spot sweep over catalog + ratio-less admitted GPU masks, not raises.

    Requires a transfer-backend estimator (the admitted GPU needs a
    synthesized compute model); the check asserts that all three pricing
    tiers sweep without raising and that the spot/market tiers mask the
    admitted GPU's cells (no quote -> NaN cost) while On-Demand prices
    them.
    """
    spec = GpuSpec(
        key="BENCHX", family="PX", marketing_name="Bench X",
        cuda_cores=4608, tensor_cores=576, memory_gb=24.0,
        peak_gflops=16300.0, memory_bandwidth_gbps=672.0,
        launch_overhead_us=3.4, saturation_elements=2.0e7,
        comm_base_us=190.0, comm_us_per_mparam=4.1,
    )
    admit_gpu(spec, usd_per_hr=2.0, replace=True)  # no spot_ratio
    try:
        estimator = _fresh_estimator(fitted)
        plan = SweepPlan.full_catalog(
            batch_sizes=(32,), pricings=(ON_DEMAND, SPOT, MARKET_RATIO),
            gpu_keys=tuple(GPU_KEYS) + (spec.key,),
        )
        result = evaluate_sweep(estimator, model, job, plan)
        g = plan.gpu_keys.index(spec.key)
        od_priced = bool(np.isfinite(result.cost_usd[0, g]).any())
        spot_masked = not bool(np.isfinite(result.cost_usd[1, g]).any())
        market_masked = not bool(np.isfinite(result.cost_usd[2, g]).any())
        return {
            "swept_without_raising": True,
            "admitted_on_demand_priced": od_priced,
            "admitted_spot_masked": spot_masked,
            "admitted_market_masked": market_masked,
            "spot_admitted_sweep_ok": od_priced and spot_masked
            and market_masked,
        }
    finally:
        clear_admitted()


def run(args: argparse.Namespace) -> dict:
    t0 = time.perf_counter()
    fitted = fit_ceer(n_iterations=args.iterations)
    transfer_fitted = fit_ceer(
        n_iterations=args.iterations, backend="transfer"
    )
    fit_s = time.perf_counter() - t0
    job = TrainingJob(IMAGENET, batch_size=args.batch_size)
    return {
        "benchmark": "spot_rerank",
        "config": {
            "model": args.model,
            "batch_size": args.batch_size,
            "fit_iterations": args.iterations,
            "repeats": args.repeats,
            "seed": args.seed,
            "ticks": args.ticks,
            "risk_aversion_usd_per_hr": args.risk_aversion,
            "batch_sizes": list(BENCH_BATCH_SIZES),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "fit_seconds": fit_s,
        "rerank": bench_rerank(fitted, args.model, job, args.seed,
                               args.repeats),
        "equivalence": check_equivalence(
            fitted, args.model, job, args.seed, args.ticks,
            args.risk_aversion,
        ),
        "admitted": check_admitted_masking(transfer_fitted, args.model, job),
    }


def render(report: dict) -> str:
    r = report["rerank"]
    e = report["equivalence"]
    a = report["admitted"]
    return "\n".join([
        f"spot-rerank benchmark ({report['config']['model']}, "
        f"{r['candidates']} spot candidates)",
        f"  full re-sweep (warm): {r['resweep_warm_ms']:9.3f} ms | "
        f"re-rank {r['rerank_ms']:7.3f} ms ({r['speedup']:.1f}x)",
        f"  equivalence: {e['ranking_mismatches']} ranking mismatches over "
        f"{e['ticks_checked']} ticks, scores bitwise "
        f"{'equal' if e['scores_bitwise_equal'] else 'UNEQUAL'}",
        f"  admitted-GPU spot sweep: "
        f"{'masks, not raises (OK)' if a['spot_admitted_sweep_ok'] else 'FAIL'}",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--model", default="inception_v3",
                        help="zoo model for the benchmark")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="training-job batch size")
    parser.add_argument("--iterations", type=int, default=60,
                        help="profiling iterations for the fit (latency is "
                             "independent of this; low keeps CI fast)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (best-of)")
    parser.add_argument("--seed", type=int, default=2020,
                        help="spot trace seed")
    parser.add_argument("--ticks", type=int, default=4,
                        help="ticks to verify rerank/re-sweep equivalence on")
    parser.add_argument("--risk-aversion", type=float, default=0.5,
                        help="spot-risk lambda for the equivalence check")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run(args)
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not (report["equivalence"]["rankings_identical"]
            and report["equivalence"]["scores_bitwise_equal"]):
        print("WARNING: re-rank and full re-sweep rankings disagree",
              file=sys.stderr)
        return 1
    if report["rerank"]["candidates"] < 1000:
        print("WARNING: spot sweep covers fewer than 1000 candidates",
              file=sys.stderr)
        return 1
    if report["rerank"]["speedup"] < 10.0:
        print("WARNING: re-rank speedup below the 10x target",
              file=sys.stderr)
        return 1
    if not report["admitted"]["spot_admitted_sweep_ok"]:
        print("WARNING: admitted-GPU spot sweep contract broken",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
