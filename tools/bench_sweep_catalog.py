#!/usr/bin/env python
"""Microbenchmark for the batched full-catalog sweep engine.

Times the per-candidate reference loop (one ``predict_training`` call per
(pricing, GPU model, count, batch) cell) against the batched tensor path
(:func:`repro.core.batch.evaluate_sweep`) on the full AWS catalog plan —
1000+ candidates — and emits a JSON report so the perf trajectory is
tracked in version control:

* reference loop latency, warm (engine caches hot, so the comparison
  isolates the per-candidate Python overhead the batched path removes);
* batched sweep latency, cold (stacking + compiling every batch graph)
  and warm (stacked coefficients, totals, comm grid, and price grid all
  cached);
* zoo-wide batched/loop numerical equivalence (max relative difference
  over every unmasked candidate's total_us and cost_usd).

Headless usage::

    PYTHONPATH=src python tools/bench_sweep_catalog.py --json BENCH_sweep_catalog.json

The default fit uses reduced profiling iterations — sweep latency is
independent of how many iterations trained the regressions, and this
keeps the tool runnable in CI in well under a minute.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core.batch import (
    DEFAULT_SWEEP_BATCH_SIZES,
    DEFAULT_SWEEP_PRICINGS,
    SweepPlan,
    evaluate_sweep,
    sweep_candidates_reference,
)
from repro.core.estimator import CeerEstimator
from repro.core.fit import fit_ceer
from repro.models.zoo import model_names
from repro.obs.export import write_trace
from repro.obs.spans import disable_tracing, enable_tracing
from repro.workloads.dataset import IMAGENET, TrainingJob


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fresh_estimator(fitted) -> CeerEstimator:
    return CeerEstimator(
        fitted.estimator.compute_models, fitted.estimator.comm_model
    )


def bench_catalog_sweep(
    fitted, model: str, job: TrainingJob, plan: SweepPlan, repeats: int
) -> dict:
    """Time the reference loop vs the batched path on one shared plan.

    Both paths are primed before timing so the engine's graph caches are
    hot for each: the measured gap is the per-candidate Python dispatch
    the batched path eliminates, not one-off graph compilation.
    """
    estimator = _fresh_estimator(fitted)
    # Prime the engine's compiled graphs (shared by both paths).
    sweep_candidates_reference(estimator, model, job, plan)
    loop_s = best_of(
        lambda: sweep_candidates_reference(estimator, model, job, plan), repeats
    )

    def cold():
        # A fresh estimator per run: stacked coefficients, totals, comm
        # grid, and engine caches all rebuilt — but the plan's price grid
        # is also dropped by rebuilding the plan.
        cold_est = _fresh_estimator(fitted)
        cold_plan = SweepPlan(
            gpu_keys=plan.gpu_keys, gpu_counts=plan.gpu_counts,
            batch_sizes=plan.batch_sizes, pricings=plan.pricings,
        )
        evaluate_sweep(cold_est, model, job, cold_plan)

    cold_s = best_of(cold, repeats)
    evaluate_sweep(estimator, model, job, plan)  # prime every batch cache
    warm_s = best_of(lambda: evaluate_sweep(estimator, model, job, plan), repeats)
    result = evaluate_sweep(estimator, model, job, plan)
    return {
        "model": model,
        "candidates": result.n_candidates,
        "n_cells": plan.n_cells,
        "loop_warm_ms": loop_s * 1e3,
        "batched_cold_ms": cold_s * 1e3,
        "batched_warm_ms": warm_s * 1e3,
        "speedup_cold": loop_s / cold_s,
        "speedup_warm": loop_s / warm_s,
    }


def check_equivalence(fitted, job: TrainingJob, plan: SweepPlan) -> dict:
    """Max batched/loop relative difference across the whole zoo."""
    estimator = _fresh_estimator(fitted)
    worst = 0.0
    n_checked = 0
    for name in model_names():
        result = evaluate_sweep(estimator, name, job, plan)
        reference = sweep_candidates_reference(estimator, name, job, plan)
        cells = list(result.iter_candidates())
        if len(cells) != len(reference):
            raise SystemExit(
                f"candidate sets disagree for {name!r}: batched has "
                f"{len(cells)}, reference has {len(reference)}"
            )
        for (p, g, k, b), ref in zip(cells, reference):
            got = result.prediction(p, g, k, b)
            for field in ("total_us", "cost_dollars"):
                ref_v = getattr(ref, field)
                got_v = getattr(got, field)
                if ref_v > 0:
                    worst = max(worst, abs(got_v - ref_v) / ref_v)
                n_checked += 1
    return {
        "max_rel_diff": worst,
        "checked": n_checked,
        "models": len(model_names()),
        "candidates_per_model": plan.n_cells,
        "within_1e-9": worst <= 1e-9,
    }


def run(args: argparse.Namespace) -> dict:
    t0 = time.perf_counter()
    fitted = fit_ceer(n_iterations=args.iterations)
    fit_s = time.perf_counter() - t0
    job = TrainingJob(IMAGENET, batch_size=args.batch_size)
    plan = SweepPlan.full_catalog(
        batch_sizes=DEFAULT_SWEEP_BATCH_SIZES, pricings=DEFAULT_SWEEP_PRICINGS
    )

    if args.trace_out is not None:
        # Traced demo pass, separate from the timed runs so the span
        # instrumentation never skews the reported numbers.
        estimator = _fresh_estimator(fitted)
        tracer = enable_tracing()
        try:
            evaluate_sweep(estimator, args.model, job, plan)  # cold
            evaluate_sweep(estimator, args.model, job, plan)  # warm
        finally:
            disable_tracing()
        write_trace(args.trace_out, tracer)
        print(f"wrote trace of cold+warm catalog sweep to {args.trace_out}")

    report = {
        "benchmark": "sweep_catalog",
        "config": {
            "model": args.model,
            "batch_size": args.batch_size,
            "fit_iterations": args.iterations,
            "repeats": args.repeats,
            "batch_sizes": list(plan.batch_sizes),
            "pricings": [p.name for p in plan.pricings],
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "fit_seconds": fit_s,
        "sweep": bench_catalog_sweep(fitted, args.model, job, plan, args.repeats),
        "equivalence": check_equivalence(fitted, job, plan),
    }
    return report


def render(report: dict) -> str:
    w = report["sweep"]
    e = report["equivalence"]
    return "\n".join(
        [
            f"catalog-sweep benchmark ({report['config']['model']}, "
            f"{w['candidates']} candidates over "
            f"{len(report['config']['batch_sizes'])} batch sizes x "
            f"{len(report['config']['pricings'])} pricing tiers)",
            f"  per-candidate loop (warm): {w['loop_warm_ms']:9.2f} ms",
            f"  batched sweep:  cold {w['batched_cold_ms']:9.3f} ms "
            f"({w['speedup_cold']:.1f}x) | warm {w['batched_warm_ms']:7.3f} ms "
            f"({w['speedup_warm']:.0f}x)",
            f"  equivalence:    max rel diff {e['max_rel_diff']:.2e} over "
            f"{e['checked']} checks across {e['models']} zoo models "
            f"({'OK' if e['within_1e-9'] else 'FAIL'} at 1e-9)",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--model", default="inception_v3",
                        help="zoo model for the latency benchmark")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="training-job batch size for the equivalence "
                             "job's dataset maths")
    parser.add_argument("--iterations", type=int, default=60,
                        help="profiling iterations for the fit (latency is "
                             "independent of this; low keeps CI fast)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (best-of)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="write a Chrome trace-event JSON of one "
                             "cold+warm catalog sweep (untimed demo pass)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run(args)
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["equivalence"]["within_1e-9"]:
        return 1
    if report["sweep"]["candidates"] < 1000:
        print("WARNING: catalog sweep covers fewer than 1000 candidates",
              file=sys.stderr)
        return 1
    if report["sweep"]["speedup_warm"] < 10.0:
        print("WARNING: warm batched sweep speedup below the 10x target",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
