#!/usr/bin/env python
"""Benchmark for the cross-hardware transfer backend.

Quantifies the two costs of predicting GPUs we never profiled
(DESIGN.md section 5h) and emits a JSON report so the trajectory is
tracked in version control:

* **accuracy** — the leave-one-GPU-out (LOGO) heavy-op MAPE per holdout
  GPU: each fold fits the pooled transfer model on the other GPUs only
  and scores it on the holdout, against the in-sample MAPE of the
  paper's own per-GPU fits on the same rows;
* **latency** — warm full-catalog sweep time over a runtime-admitted,
  spec-only GPU (whose per-op models are synthesized by collapsing the
  pooled fit) vs the same sweep over the profiled V100, as a ratio so
  host speed cancels out;
* **sanity** — every spec-only prediction must be finite, positive, and
  carry a positive uncertainty band.

Headless usage::

    PYTHONPATH=src python tools/bench_transfer.py --json BENCH_transfer.json

The default fit uses reduced profiling iterations; LOGO MAPE is stable
well below the paper's 1,000 iterations, and this keeps the tool
runnable in CI in about a minute.
"""

from __future__ import annotations

# Benchmarks time wall-clock by design.
# staticcheck: ignore-file[determinism]

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

from repro.cloud.catalog import admit_gpu, clear_admitted
from repro.cloud.pricing import ON_DEMAND
from repro.core.batch import (
    DEFAULT_SWEEP_BATCH_SIZES,
    SweepPlan,
    evaluate_sweep,
)
from repro.core.classify import classify_operations
from repro.core.estimator import CeerEstimator
from repro.core.fit import fit_ceer
from repro.core.transfer import logo_report
from repro.hardware.gpus import GPU_KEYS, GpuSpec
from repro.units import MS_PER_S
from repro.workloads.dataset import IMAGENET, TrainingJob

#: The spec-only GPU the latency section admits: a plausible mid-range
#: device between the T4 and the V100, never profiled.
BENCH_SPEC = GpuSpec(
    key="XBENCH", family="GXB", marketing_name="Bench Spec-Only GPU",
    cuda_cores=4096, tensor_cores=256, memory_gb=24,
    peak_gflops=12000.0, memory_bandwidth_gbps=600.0,
    launch_overhead_us=4.0, saturation_elements=1.0e6,
    comm_base_us=4000.0, comm_us_per_mparam=300.0,
)


def best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_logo(fitted, jobs) -> dict:
    """Leave-one-GPU-out accuracy of the pooled transfer fit."""
    classification = classify_operations(fitted.train_profiles)
    report = logo_report(fitted.train_profiles, classification, jobs=jobs)
    folds = {
        fold.gpu_key: {
            "transfer_mape": fold.transfer_mape,
            "per_gpu_mape": fold.per_gpu_mape,
            "n_rows": fold.n_rows,
            "n_op_types": fold.n_op_types,
        }
        for fold in report.folds
    }
    mapes = [f["transfer_mape"] for f in folds.values()]
    return {
        "reference_gpu": report.reference_gpu,
        "folds": folds,
        "gpus": sorted(folds),
        "covers_all_gpus": sorted(folds) == sorted(GPU_KEYS),
        "max_transfer_mape": max(mapes),
        "mean_transfer_mape": sum(mapes) / len(mapes),
        "all_finite": all(math.isfinite(m) and m > 0 for m in mapes),
    }


def bench_spec_only(fitted, model: str, repeats: int) -> dict:
    """Warm sweep latency over an admitted GPU vs the profiled V100.

    Same plan shape (one GPU, same counts/batches, on-demand pricing)
    either side; the ratio isolates what synthesizing per-op models from
    the pooled fit adds over reading the paper's per-GPU tables.
    """
    estimator = CeerEstimator(
        fitted.estimator.compute_models, fitted.estimator.comm_model
    )
    job = TrainingJob(IMAGENET, batch_size=32)
    admit_gpu(BENCH_SPEC, usd_per_hr=2.0, max_gpus=4)
    try:
        profiled_plan = SweepPlan.full_catalog(
            batch_sizes=DEFAULT_SWEEP_BATCH_SIZES, pricings=(ON_DEMAND,),
            gpu_keys=("V100",),
        )
        admitted_plan = SweepPlan.full_catalog(
            batch_sizes=DEFAULT_SWEEP_BATCH_SIZES, pricings=(ON_DEMAND,),
            gpu_keys=(BENCH_SPEC.key,),
        )
        evaluate_sweep(estimator, model, job, profiled_plan)  # prime
        profiled_s = best_of(
            lambda: evaluate_sweep(estimator, model, job, profiled_plan),
            repeats,
        )
        evaluate_sweep(estimator, model, job, admitted_plan)  # prime
        admitted_s = best_of(
            lambda: evaluate_sweep(estimator, model, job, admitted_plan),
            repeats,
        )

        result = evaluate_sweep(estimator, model, job, admitted_plan)
        points = list(result.predictions())
        all_finite = bool(points) and all(
            math.isfinite(p.total_us) and p.total_us > 0
            and math.isfinite(p.cost_dollars) and p.cost_dollars > 0
            for p in points
        )
        prediction = estimator.predict_training(model, BENCH_SPEC.key, 2, job)
        return {
            "gpu_key": BENCH_SPEC.key,
            "model": model,
            "candidates": len(points),
            "profiled_warm_ms": profiled_s * MS_PER_S,
            "admitted_warm_ms": admitted_s * MS_PER_S,
            "overhead_ratio": admitted_s / profiled_s,
            "all_finite": all_finite,
            "uncertainty_positive": prediction.compute_std_us > 0
            and prediction.total_std_hours > 0,
        }
    finally:
        clear_admitted(BENCH_SPEC.key)


def run(args: argparse.Namespace) -> dict:
    t0 = time.perf_counter()
    fitted = fit_ceer(n_iterations=args.iterations, backend="transfer")
    fit_s = time.perf_counter() - t0
    return {
        "benchmark": "transfer",
        "config": {
            "model": args.model,
            "fit_iterations": args.iterations,
            "repeats": args.repeats,
            "jobs": args.jobs,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "fit_seconds": fit_s,
        "logo": bench_logo(fitted, args.jobs),
        "spec_only": bench_spec_only(fitted, args.model, args.repeats),
    }


def render(report: dict) -> str:
    logo = report["logo"]
    spec = report["spec_only"]
    lines = [
        f"transfer benchmark (LOGO over {len(logo['gpus'])} GPUs, "
        f"reference {logo['reference_gpu']})",
    ]
    for gpu in logo["gpus"]:
        fold = logo["folds"][gpu]
        lines.append(
            f"  holdout {gpu:<5s} transfer MAPE {fold['transfer_mape']:7.1%} "
            f"| per-GPU in-sample {fold['per_gpu_mape']:6.1%} "
            f"({fold['n_rows']} rows, {fold['n_op_types']} op types)"
        )
    lines.append(
        f"  spec-only sweep ({spec['gpu_key']}, {spec['candidates']} "
        f"candidates): warm {spec['admitted_warm_ms']:.3f} ms vs profiled "
        f"V100 {spec['profiled_warm_ms']:.3f} ms "
        f"({spec['overhead_ratio']:.2f}x)"
    )
    lines.append(
        f"  finite predictions: {'OK' if spec['all_finite'] else 'FAIL'} | "
        f"uncertainty bands: "
        f"{'OK' if spec['uncertainty_positive'] else 'FAIL'}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--model", default="resnet_50",
                        help="zoo model for the spec-only sweep")
    parser.add_argument("--iterations", type=int, default=60,
                        help="profiling iterations for the fit")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats (best-of)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="fan the LOGO folds out over this many worker "
                             "processes (byte-identical to serial)")
    parser.add_argument("--max-overhead", type=float, default=3.0,
                        help="fail if the spec-only warm sweep is more than "
                             "this many times slower than the profiled one")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run(args)
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if not report["logo"]["covers_all_gpus"]:
        print("WARNING: LOGO report does not cover every profiled GPU",
              file=sys.stderr)
        return 1
    if not report["logo"]["all_finite"]:
        print("WARNING: non-finite LOGO MAPE", file=sys.stderr)
        return 1
    if not report["spec_only"]["all_finite"]:
        print("WARNING: non-finite spec-only sweep prediction",
              file=sys.stderr)
        return 1
    if not report["spec_only"]["uncertainty_positive"]:
        print("WARNING: spec-only prediction lacks uncertainty bands",
              file=sys.stderr)
        return 1
    if report["spec_only"]["overhead_ratio"] > args.max_overhead:
        print(f"WARNING: spec-only sweep overhead "
              f"{report['spec_only']['overhead_ratio']:.2f}x exceeds the "
              f"{args.max_overhead:.1f}x budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
