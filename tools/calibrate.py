#!/usr/bin/env python
"""Calibration harness: report every paper-target metric of the simulated
hardware in one run. Used while tuning the constants in
repro/hardware/{gpus,calibration}.py and repro/sim/dataparallel.py.

Targets (paper):
  Fig2: P3 ~10x faster than P2, ~4x than G4; P2 ~1.5x slower than G3 (heavy-op avg)
  Fig3: G4 cheapest for most ops; P3 cheapest for pooling (~20%); G4 margin ~16%
  Fig5: p95 of heavy-op normalized std < 0.1
  Fig6: Inception-v1 reductions ~35.8/46.6/53.6% (k=2/3/4, avg over GPUs)
  IV-A: AlexNet k=1 comm fraction ~30%
  Fig8 (k=4): P3 cuts time ~72/63/48% vs P2/G3/G4; G4 cheapest; G4 time ~2.3x P3
  Fig9 ($3/hr): G4 optimal for alexnet+resnet101; P3 for inception_v3+vgg_19
  Fig11: 1-GPU G4 cheapest (AWS prices) for inception_v3
  Fig12: 1-GPU P2 cheapest (market prices)
"""
import argparse
from collections import defaultdict

from repro.artifacts.workspace import active_workspace
from repro.core.classify import classify_operations
from repro.models import TEST_MODELS, TRAIN_MODELS, build_model
from repro.sim import comm_overhead_base_us, run_iterations
from repro.workloads import IMAGENET_EPOCH, IMAGENET_6400, TrainingJob
from repro.cloud import ON_DEMAND, MARKET_RATIO
from repro.graph.ops import OpCategory, op_def

N = 60


def warm_measurement_grid(ws, jobs):
    """Pre-compute every ground-truth cell the report below reads.

    Fans the (model, GPU, k, pricing) grid out to worker processes; each
    cell lands in the workspace, so the serial reporting code that follows
    sees only cache hits. Grid membership mirrors the measure() calls in
    the report sections — keep the two in sync."""
    from repro.parallel import MeasurementTask, run_fanout

    gpus = ("V100", "K80", "T4", "M60")
    tasks = []

    def add(model, gpu_key, num_gpus, job, pricing=ON_DEMAND):
        tasks.append(MeasurementTask(
            model=model, gpu_key=gpu_key, num_gpus=num_gpus,
            num_samples=job.dataset.num_samples, batch_size=job.batch_size,
            epochs=job.epochs, n_iterations=N, seed_context="",
            placement="single-host", pricing_name=pricing.name,
            workspace_dir=str(ws.directory),
        ))

    job6 = TrainingJob(IMAGENET_6400, batch_size=32)
    for g in gpus:
        for k in (1, 2, 3, 4):
            add("inception_v1", g, k, job6)                  # Fig6
            add("resnet_101", g, k, IMAGENET_EPOCH)          # Fig10
            add("inception_v3", g, k, IMAGENET_EPOCH)        # Fig11
            add("inception_v3", g, k, IMAGENET_EPOCH, MARKET_RATIO)  # Fig12
    for name in TEST_MODELS:
        for g in gpus:
            add(name, g, 4, IMAGENET_EPOCH)                  # Fig8
        for g, k in (("K80", 3), ("M60", 3), ("T4", 3), ("V100", 1)):
            add(name, g, k, IMAGENET_EPOCH)                  # Fig9
    run_fanout(list(dict.fromkeys(tasks)), jobs=jobs)


def main():
    # The workspace (and the profile fan-out it feeds) is built here, not
    # at module scope: forked workers must never inherit import-time store
    # state (staticcheck fork-safety).
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="warm the profile sweep and measurement grid with "
                             "N worker processes before reporting (results are "
                             "identical; default: serial)")
    args = parser.parse_args()

    ws = active_workspace()
    profiles = ws.profiles(
        list(TRAIN_MODELS), ["V100", "K80", "T4", "M60"], N, jobs=args.jobs
    )

    def measure(model, gpu_key, num_gpus, job, pricing=ON_DEMAND):
        """Workspace-cached ground truth at the calibration seed (training seed
        context, matching what the fit sees), so re-running the harness while
        tuning constants only recomputes what a calibration bump invalidates."""
        return ws.observed_training(
            model, gpu_key, num_gpus, job, N, seed_context="", pricing=pricing
        )

    if args.jobs is not None:
        warm_measurement_grid(ws, args.jobs)

    classification = classify_operations(profiles)
    heavy = classification.heavy
    print(f"heavy op types ({len(heavy)}):", ", ".join(sorted(heavy)))

    means = {g: profiles.for_gpu(g).gpu_records().mean_us_by_op_type() for g in ("V100", "K80", "T4", "M60")}
    ratios = defaultdict(list)
    for op in sorted(heavy):
        if all(op in means[g] for g in means):
            ratios["P2/P3"].append(means["K80"][op] / means["V100"][op])
            ratios["G4/P3"].append(means["T4"][op] / means["V100"][op])
            ratios["P2/G3"].append(means["K80"][op] / means["M60"][op])
    for k, v in ratios.items():
        print(f"Fig2 {k}: mean {sum(v)/len(v):.2f} (range {min(v):.2f}-{max(v):.2f})")

    prices = {g: ON_DEMAND.instance(g, 1).usd_per_hr for g in ("V100", "K80", "T4", "M60")}
    g4_wins, p3_wins = [], []
    for op in sorted(heavy):
        if not all(op in means[g] for g in means):
            continue
        costs = {g: means[g][op] * prices[g] for g in means}
        winner = min(costs, key=costs.get)
        cat = op_def(op).category
        margin = sorted(costs.values())[1] / min(costs.values()) - 1
        (p3_wins if winner == "V100" else g4_wins if winner == "T4" else []).append(op)
        print(f"Fig3 {op:38s} winner={winner:5s} margin={margin:5.1%} cat={cat.value}")
    print(f"Fig3 winners: G4={len(g4_wins)}, P3={len(p3_wins)} ({', '.join(p3_wins)})")

    nstd = [r.normalized_std for r in profiles.gpu_records() if r.op_type in heavy]
    nstd.sort()
    print(f"Fig5 p95 normalized std (heavy): {nstd[int(0.95*len(nstd))]:.3f}")

    print("Fig6 scaling (inception_v1, D=6400):")
    job6 = TrainingJob(IMAGENET_6400, batch_size=32)
    for k in (2, 3, 4):
        reds = []
        for g in ("V100", "K80", "T4", "M60"):
            t1 = measure("inception_v1", g, 1, job6).total_us
            tk = measure("inception_v1", g, k, job6).total_us
            reds.append(1 - tk / t1)
        print(f"  k={k}: avg reduction {sum(reds)/len(reds):.1%} ({['%.0f%%' % (100*r) for r in reds]})")

    ga = build_model("alexnet")
    for g in ("V100", "K80", "T4", "M60"):
        W = run_iterations(ga, g, N).compute_us
        S = comm_overhead_base_us(g, 1, ga.num_parameters, ga.num_variables)
        print(f"AlexNet comm fraction {g}: {S/(S+W):.1%}")

    print("Fig8 (k=4, ImageNet epoch):")
    for name in TEST_MODELS:
        res = {g: measure(name, g, 4, IMAGENET_EPOCH) for g in ("V100", "K80", "T4", "M60")}
        t = {g: r.total_us for g, r in res.items()}
        c = {g: r.cost_dollars for g, r in res.items()}
        print(f"  {name:14s} P3 cuts vs P2/G3/G4: "
              f"{1-t['V100']/t['K80']:.0%}/{1-t['V100']/t['M60']:.0%}/{1-t['V100']/t['T4']:.0%} "
              f"G4time/P3time={t['T4']/t['V100']:.2f} cheapest-cost={min(c, key=c.get)} "
              f"costs V100=${c['V100']:.0f} T4=${c['T4']:.0f}")

    print("Fig9 ($3/hr): configs P2k3,G3k3,G4k3,P3k1 — per-sample time (ms)")
    cfgs = [("K80", 3), ("M60", 3), ("T4", 3), ("V100", 1)]
    for name in TEST_MODELS:
        per = {}
        for g, k in cfgs:
            m = measure(name, g, k, IMAGENET_EPOCH)
            per[f"{g}x{k}"] = m.per_iteration_us / (k * 32) / 1e3
        best = min(per, key=per.get)
        print(f"  {name:14s} best={best:8s} " + " ".join(f"{c}={v:.2f}" for c, v in per.items()))

    print("Fig10 (resnet_101, all configs): cost & time")
    feas = []
    for g in ("V100", "K80", "T4", "M60"):
        for k in (1, 2, 3, 4):
            m = measure("resnet_101", g, k, IMAGENET_EPOCH)
            feas.append((m.cost_dollars, m.total_hours, f"{g}x{k}"))
    for cost, hours, cfg in sorted(feas):
        print(f"  {cfg:8s} ${cost:6.2f}  {hours:6.2f} h")

    for pricing, tag in ((ON_DEMAND, "Fig11 aws"), (MARKET_RATIO, "Fig12 market")):
        costs = {}
        for g in ("V100", "K80", "T4", "M60"):
            for k in (1, 2, 3, 4):
                m = measure("inception_v3", g, k, IMAGENET_EPOCH, pricing=pricing)
                costs[f"{g}x{k}"] = m.cost_dollars
        best = min(costs, key=costs.get)
        print(f"{tag}: cheapest={best} " + " ".join(f"{c}=${v:.1f}" for c, v in sorted(costs.items())))


if __name__ == "__main__":
    main()
