#!/usr/bin/env python
"""repro.staticcheck driver — thin wrapper over ``repro.staticcheck.cli``.

Usage::

    python tools/check.py [PATH ...] [options]

    PATH                 files/directories to check (default: src/repro)
    --json               emit the machine-readable report on stdout
    --baseline FILE      baseline of grandfathered findings
                         (default: tools/check_baseline.json when present)
    --update-baseline    freeze current findings into the baseline and exit 0
                         (--write-baseline is an accepted alias)
    --no-contract        skip the semantic registry/zoo contract sweep
    --rules R1,R2        restrict to a comma-separated subset of rules
    --list-rules         print the rule catalogue and exit
    --jobs N             fan per-file analysis out over N worker processes
                         (byte-identical output to serial)
    --cache FILE         content-hash analysis cache (CI restores it so
                         unchanged files skip analysis)

Exit codes: 0 = clean (modulo baseline), 1 = findings, 2 = usage/internal
error. The same driver backs the ``repro check`` subcommand; the JSON
schema (version 2) is documented in :mod:`repro.staticcheck.cli`.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.staticcheck import cli as check_cli  # noqa: E402

DEFAULT_BASELINE = check_cli.DEFAULT_BASELINE
JSON_VERSION = check_cli.JSON_VERSION

build_parser = check_cli.build_parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    return check_cli.main(argv, prog="check.py")


if __name__ == "__main__":
    sys.exit(main())
