#!/usr/bin/env python
"""repro.staticcheck driver: lint + contract-check the tree, fail on findings.

Usage::

    python tools/check.py [PATH ...] [options]

    PATH                 files/directories to check (default: src/repro)
    --json               emit the machine-readable report on stdout
    --baseline FILE      baseline of grandfathered findings
                         (default: tools/check_baseline.json when present)
    --write-baseline     freeze current findings into the baseline and exit 0
    --no-contract        skip the semantic registry/zoo contract sweep
    --rules R1,R2        restrict to a comma-separated subset of rules
    --list-rules         print the rule catalogue and exit

Exit codes: 0 = clean (modulo baseline), 1 = findings, 2 = usage/internal
error.

JSON schema (stable; ``version`` bumps on breaking change)::

    {
      "version": 1,
      "tool": "repro.staticcheck",
      "files_checked": <int>,
      "ok": <bool>,
      "exit_code": 0 | 1,
      "findings": [
        {"path": str, "line": int, "col": int, "rule": str,
         "message": str, "symbol": str, "severity": str,
         "fingerprint": str},
        ...
      ],
      "suppressed": {"pragma": <int>, "baseline": <int>},
      "stale_baseline": [<fingerprint>, ...]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.staticcheck import (  # noqa: E402
    ALL_RULES,
    Baseline,
    load_baseline,
    run_checks,
    write_baseline,
)
from repro.staticcheck.baseline import BaselineError  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "tools" / "check_baseline.json"
JSON_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="check.py",
        description="Run repro.staticcheck over the tree.",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to check (default: src/repro)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable report")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="freeze current findings into the baseline")
    parser.add_argument("--no-contract", action="store_true",
                        help="skip the semantic registry/zoo contract sweep")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(ALL_RULES.items()):
            print(f"{rule:<20s} {description}")
        return 0

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in ALL_RULES]
        if unknown:
            print(f"check.py: unknown rules: {', '.join(unknown)}; "
                  f"try --list-rules", file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths] if args.paths else [REPO_ROOT / "src" / "repro"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"check.py: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE

    baseline: Optional[Baseline] = None
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"check.py: {exc}", file=sys.stderr)
            return 2

    report = run_checks(
        paths, REPO_ROOT,
        baseline=baseline,
        rules=rules,
        contracts=not args.no_contract,
    )

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(target, report.findings + report.grandfathered)
        print(f"check.py: wrote {len(report.findings) + len(report.grandfathered)} "
              f"fingerprints to {target}")
        return 0

    exit_code = 0 if report.ok else 1
    if args.as_json:
        payload = {
            "version": JSON_VERSION,
            "tool": "repro.staticcheck",
            "files_checked": report.files_checked,
            "ok": report.ok,
            "exit_code": exit_code,
            "findings": [f.to_json() for f in report.sorted_findings()],
            "suppressed": {
                "pragma": report.pragma_suppressed,
                "baseline": len(report.grandfathered),
            },
            "stale_baseline": report.stale_baseline,
        }
        print(json.dumps(payload, indent=2))
        return exit_code

    for finding in report.sorted_findings():
        print(finding.render())
    summary = (
        f"check.py: {report.files_checked} files, "
        f"{len(report.findings)} finding(s)"
    )
    if report.grandfathered:
        summary += f", {len(report.grandfathered)} grandfathered"
    if report.pragma_suppressed:
        summary += f", {report.pragma_suppressed} pragma-suppressed"
    print(summary)
    if report.stale_baseline:
        print(f"check.py: {len(report.stale_baseline)} stale baseline "
              f"entr(y/ies) — prune them:", file=sys.stderr)
        for fp in report.stale_baseline:
            print(f"  {fp}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
