#!/usr/bin/env python
"""CI perf-regression gate: fresh bench report vs the committed baseline.

Compares a freshly generated ``tools/bench_engine.py --json`` report
against the committed ``BENCH_predict_engine.json`` and fails (exit 1) on
regression. Absolute latencies are machine-dependent — a CI runner is not
the machine the baseline was recorded on — so the gate checks the
*machine-independent* quantities:

* ``sweep.speedup_cold`` / ``sweep.speedup_warm`` and
  ``single_graph.speedup_warm`` — scalar-vs-engine ratios measured on the
  same machine in the same process, so host speed cancels out. A slowdown
  injected into the engine (but not the scalar reference) tanks these.
* ``equivalence.max_rel_diff`` — must stay within 1e-6 (correctness, not
  timing; no tolerance applies).

Ratios regressing more than ``--tolerance`` (default 15%) below baseline
fail the gate; improvements beyond the same margin pass with a reminder
to refresh the committed baseline. Absolute latency deltas are printed
for information only.

The gate optionally also checks the parallel fan-out benchmark
(``tools/bench_fanout.py`` / ``BENCH_fanout.json``) when ``--fanout-fresh``
is given. Fan-out speedup depends on the host's core count, so that check
is core-aware: the byte-identity flag must always hold, the speedup floor
(default 2x) is enforced only when the fresh report's machine has >= 4
cores, and fresh-vs-baseline ratio comparison happens only when the two
reports were measured on the same core count.

And it checks the batched catalog-sweep benchmark
(``tools/bench_sweep_catalog.py`` / ``BENCH_sweep_catalog.json``) when
``--catalog-fresh`` is given. Those checks are machine-independent too:
the warm batched/loop speedup ratio (same process, host speed cancels)
must stay above an absolute floor (default 10x) *and* within tolerance of
the committed baseline; the sweep must cover at least 1000 candidates;
and the batched/loop equivalence must hold to 1e-9 (correctness, no
tolerance).

Finally, the cross-hardware transfer benchmark
(``tools/bench_transfer.py`` / ``BENCH_transfer.json``) is checked when
``--transfer-fresh`` is given: the LOGO report must cover every paper
GPU with finite MAPEs, the worst fold's transfer MAPE must stay under an
absolute ceiling and within ``--transfer-tolerance`` of the committed
baseline, spec-only sweep predictions must be finite with positive
uncertainty bands, and the spec-only/profiled warm sweep ratio must stay
within ``--transfer-max-overhead``.

The spot re-rank benchmark (``tools/bench_spot_rerank.py`` /
``BENCH_spot_rerank.json``) is checked when ``--spot-fresh`` is given:
the re-rank and full re-sweep rankings must be bit-identical across
ticks (exact booleans, no tolerance), the spot sweep must cover at
least 1000 candidates, the admitted-GPU masking contract must hold,
and the same-process re-rank/re-sweep speedup must clear an absolute
floor (default 10x) plus a drift tripwire against the committed
baseline.

The serving-layer benchmark (``tools/bench_serve.py`` /
``BENCH_serve.json``) is checked when ``--serve-fresh`` is given: exact
contracts (an identical concurrent burst collapses to one evaluation,
hot swaps under live traffic drop zero requests, every endpoint answers)
plus two same-process ratios — warm-vs-cold first-query latency and
distinct-vs-identical burst wall time — each with an absolute floor and
a drift tripwire against the committed baseline. qps and percentile
latencies are informational.

Usage (the CI ``perf`` job)::

    PYTHONPATH=src python tools/bench_engine.py --json fresh.json
    PYTHONPATH=src python tools/bench_fanout.py --json fanout-fresh.json
    PYTHONPATH=src python tools/bench_sweep_catalog.py --json catalog-fresh.json
    PYTHONPATH=src python tools/bench_transfer.py --json transfer-fresh.json
    python tools/perf_gate.py --baseline BENCH_predict_engine.json \
        --fresh fresh.json --fanout-baseline BENCH_fanout.json \
        --fanout-fresh fanout-fresh.json \
        --catalog-baseline BENCH_sweep_catalog.json \
        --catalog-fresh catalog-fresh.json \
        --transfer-baseline BENCH_transfer.json \
        --transfer-fresh transfer-fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple

#: (path into the report, human label) for each gated speedup ratio.
GATED_RATIOS: Tuple[Tuple[Tuple[str, str], str], ...] = (
    (("sweep", "speedup_cold"), "16-candidate sweep, cold"),
    (("sweep", "speedup_warm"), "16-candidate sweep, warm"),
    (("single_graph", "speedup_warm"), "single-graph eval, warm"),
)

#: Informational absolute latencies (not gated; machine-dependent).
INFO_LATENCIES: Tuple[Tuple[Tuple[str, str], str], ...] = (
    (("sweep", "engine_cold_ms"), "sweep cold ms"),
    (("sweep", "engine_warm_ms"), "sweep warm ms"),
    (("single_graph", "engine_warm_us"), "single-graph warm us"),
)

EQUIVALENCE_BOUND = 1e-6


def _lookup(report: dict, path: Tuple[str, str]) -> float:
    section, field = path
    try:
        value = report[section][field]
    except KeyError as exc:
        raise SystemExit(f"malformed bench report: missing {section}.{field}"
                         f" ({exc})")
    return float(value)


def compare(baseline: dict, fresh: dict, tolerance: float) -> Tuple[List[str], List[str]]:
    """Returns (report lines, failure lines)."""
    lines: List[str] = []
    failures: List[str] = []
    for path, label in GATED_RATIOS:
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        change = (new - base) / base if base else float("inf")
        verdict = "ok"
        if change < -tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{label}: speedup {new:.1f}x is {-change:.0%} below the "
                f"committed {base:.1f}x (tolerance {tolerance:.0%})"
            )
        elif change > tolerance:
            verdict = "improved — consider refreshing the baseline"
        lines.append(
            f"  {label:<28s} baseline {base:10.1f}x   fresh {new:10.1f}x   "
            f"{change:+7.1%}  [{verdict}]"
        )

    base_eq = _lookup(baseline, ("equivalence", "max_rel_diff"))
    new_eq = _lookup(fresh, ("equivalence", "max_rel_diff"))
    eq_ok = new_eq <= EQUIVALENCE_BOUND
    lines.append(
        f"  {'scalar/engine equivalence':<28s} baseline {base_eq:10.2e}    "
        f"fresh {new_eq:10.2e}   [{'ok' if eq_ok else 'FAIL'}]"
    )
    if not eq_ok:
        failures.append(
            f"equivalence: max_rel_diff {new_eq:.2e} exceeds "
            f"{EQUIVALENCE_BOUND:.0e} — engine and scalar paths disagree"
        )

    lines.append("  -- absolute latencies (informational; machine-dependent) --")
    for path, label in INFO_LATENCIES:
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        change = (new - base) / base if base else float("inf")
        lines.append(
            f"  {label:<28s} baseline {base:10.3f}    fresh {new:10.3f}    "
            f"{change:+7.1%}"
        )
    return lines, failures


#: Core count below which the fan-out speedup floor is not enforced —
#: a 1- or 2-core host cannot demonstrate a 2x process-parallel speedup.
FANOUT_MIN_CORES = 4


def compare_fanout(
    baseline: dict, fresh: dict, tolerance: float, min_speedup: float
) -> Tuple[List[str], List[str]]:
    """Core-count-aware checks for the fan-out benchmark reports."""
    lines: List[str] = []
    failures: List[str] = []
    fresh_cores = int(fresh["config"].get("cpu_count", 1))
    speedup = _lookup(fresh, ("sweep", "speedup"))

    identical = bool(fresh["sweep"].get("byte_identical"))
    lines.append(
        f"  {'fan-out byte identity':<28s} "
        f"[{'ok' if identical else 'FAIL'}]"
    )
    if not identical:
        failures.append(
            "fan-out: parallel sweep artifacts are not byte-identical to "
            "the serial sweep's — determinism contract broken"
        )

    if fresh_cores >= FANOUT_MIN_CORES:
        verdict = "ok" if speedup >= min_speedup else "REGRESSION"
        if speedup < min_speedup:
            failures.append(
                f"fan-out: sweep speedup {speedup:.2f}x is below the "
                f"{min_speedup:.1f}x floor on a {fresh_cores}-core host"
            )
        lines.append(
            f"  {'fan-out sweep speedup':<28s} fresh {speedup:10.2f}x   "
            f"floor {min_speedup:.1f}x ({fresh_cores} cores)  [{verdict}]"
        )
    else:
        lines.append(
            f"  {'fan-out sweep speedup':<28s} fresh {speedup:10.2f}x   "
            f"(floor waived: only {fresh_cores} core(s))"
        )

    baseline_cores = int(baseline["config"].get("cpu_count", 1))
    base_speedup = _lookup(baseline, ("sweep", "speedup"))
    if baseline_cores == fresh_cores and fresh_cores >= FANOUT_MIN_CORES:
        # Below FANOUT_MIN_CORES the ratio hovers around 1.0 and its
        # run-to-run noise exceeds any sensible tolerance, so sub-parallel
        # hosts get the comparison as information, not as a gate.
        change = (speedup - base_speedup) / base_speedup if base_speedup else float("inf")
        verdict = "ok"
        if change < -tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"fan-out: sweep speedup {speedup:.2f}x is {-change:.0%} "
                f"below the committed {base_speedup:.2f}x at the same core "
                f"count (tolerance {tolerance:.0%})"
            )
        elif change > tolerance:
            verdict = "improved — consider refreshing the baseline"
        lines.append(
            f"  {'fan-out vs baseline':<28s} baseline {base_speedup:10.2f}x   "
            f"fresh {speedup:10.2f}x   {change:+7.1%}  [{verdict}]"
        )
    elif baseline_cores != fresh_cores:
        lines.append(
            f"  {'fan-out vs baseline':<28s} skipped: baseline measured on "
            f"{baseline_cores} core(s), fresh on {fresh_cores}"
        )
    else:
        lines.append(
            f"  {'fan-out vs baseline':<28s} baseline {base_speedup:10.2f}x   "
            f"fresh {speedup:10.2f}x   (informational: {fresh_cores} core(s))"
        )
    return lines, failures


#: Batched/loop disagreement above this is a correctness failure.
CATALOG_EQUIVALENCE_BOUND = 1e-9

#: The tentpole's coverage floor: a full-catalog sweep must price at
#: least this many candidates.
CATALOG_MIN_CANDIDATES = 1000


def compare_catalog(
    baseline: dict, fresh: dict, tolerance: float, min_speedup: float
) -> Tuple[List[str], List[str]]:
    """Checks for the batched catalog-sweep benchmark reports.

    Everything gated here is machine-independent: candidate counts and
    equivalence are deterministic, and the warm speedup is a same-process
    batched-vs-loop ratio. The ratio is still noisier than the engine
    benchmark's — the batched side finishes in ~0.3 ms, so scheduler
    jitter on the ~20 ms loop numerator moves the ratio by tens of
    percent run-to-run — which is why its ``tolerance`` (the
    ``--catalog-tolerance`` flag) is wider than the engine gate's. The
    hard ``min_speedup`` floor and the equivalence bound carry the
    actual contract; the baseline ratio is a drift tripwire.
    """
    lines: List[str] = []
    failures: List[str] = []

    candidates = int(_lookup(fresh, ("sweep", "candidates")))
    count_ok = candidates >= CATALOG_MIN_CANDIDATES
    lines.append(
        f"  {'catalog candidates':<28s} fresh {candidates:10d}    "
        f"floor {CATALOG_MIN_CANDIDATES}  [{'ok' if count_ok else 'FAIL'}]"
    )
    if not count_ok:
        failures.append(
            f"catalog: sweep covers {candidates} candidates, below the "
            f"{CATALOG_MIN_CANDIDATES}-candidate floor"
        )

    speedup = _lookup(fresh, ("sweep", "speedup_warm"))
    floor_ok = speedup >= min_speedup
    lines.append(
        f"  {'catalog sweep speedup, warm':<28s} fresh {speedup:10.1f}x   "
        f"floor {min_speedup:.1f}x  [{'ok' if floor_ok else 'REGRESSION'}]"
    )
    if not floor_ok:
        failures.append(
            f"catalog: warm batched speedup {speedup:.1f}x is below the "
            f"{min_speedup:.1f}x floor"
        )

    base_speedup = _lookup(baseline, ("sweep", "speedup_warm"))
    change = (speedup - base_speedup) / base_speedup if base_speedup else float("inf")
    verdict = "ok"
    if change < -tolerance:
        verdict = "REGRESSION"
        failures.append(
            f"catalog: warm speedup {speedup:.1f}x is {-change:.0%} below "
            f"the committed {base_speedup:.1f}x (tolerance {tolerance:.0%})"
        )
    elif change > tolerance:
        verdict = "improved — consider refreshing the baseline"
    lines.append(
        f"  {'catalog vs baseline':<28s} baseline {base_speedup:10.1f}x   "
        f"fresh {speedup:10.1f}x   {change:+7.1%}  [{verdict}]"
    )

    eq = _lookup(fresh, ("equivalence", "max_rel_diff"))
    eq_ok = eq <= CATALOG_EQUIVALENCE_BOUND
    lines.append(
        f"  {'batched/loop equivalence':<28s} fresh {eq:10.2e}   "
        f"[{'ok' if eq_ok else 'FAIL'}]"
    )
    if not eq_ok:
        failures.append(
            f"catalog: max_rel_diff {eq:.2e} exceeds "
            f"{CATALOG_EQUIVALENCE_BOUND:.0e} — batched and per-candidate "
            f"paths disagree"
        )

    lines.append(
        f"  -- absolute latencies (informational; machine-dependent) --"
    )
    for path, label in (
        (("sweep", "loop_warm_ms"), "loop warm ms"),
        (("sweep", "batched_warm_ms"), "batched warm ms"),
    ):
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        delta = (new - base) / base if base else float("inf")
        lines.append(
            f"  {label:<28s} baseline {base:10.3f}    fresh {new:10.3f}    "
            f"{delta:+7.1%}"
        )
    return lines, failures


#: Absolute ceiling on any LOGO fold's transfer MAPE: extrapolating to a
#: held-out GPU from device specs alone is lossy (the K80's architecture
#: gap costs the most), but errors past this mean the pooled fit broke.
TRANSFER_MAPE_CEILING = 2.0


def compare_transfer(
    baseline: dict, fresh: dict, tolerance: float, max_ratio: float
) -> Tuple[List[str], List[str]]:
    """Checks for the cross-hardware transfer benchmark reports.

    Everything gated here is machine-independent: LOGO MAPEs are
    deterministic functions of the simulated profiles, the boolean
    sanity flags are exact, and the spec-only sweep overhead is a
    same-process ratio so host speed cancels out. The MAPE comparison
    against the committed baseline is the drift tripwire — a change to
    the pooled design matrix or the collapse arithmetic moves it
    immediately.
    """
    lines: List[str] = []
    failures: List[str] = []

    covers = bool(fresh["logo"].get("covers_all_gpus"))
    lines.append(
        f"  {'LOGO covers all paper GPUs':<28s} "
        f"[{'ok' if covers else 'FAIL'}]"
    )
    if not covers:
        failures.append(
            "transfer: LOGO report does not cover every profiled GPU"
        )

    for flag, label, message in (
        (bool(fresh["logo"].get("all_finite")), "LOGO MAPEs finite",
         "transfer: non-finite LOGO MAPE"),
        (bool(fresh["spec_only"].get("all_finite")),
         "spec-only sweep finite",
         "transfer: non-finite spec-only sweep prediction"),
        (bool(fresh["spec_only"].get("uncertainty_positive")),
         "spec-only uncertainty bands",
         "transfer: spec-only prediction lacks uncertainty bands"),
    ):
        lines.append(f"  {label:<28s} [{'ok' if flag else 'FAIL'}]")
        if not flag:
            failures.append(message)

    base_mape = _lookup(baseline, ("logo", "max_transfer_mape"))
    new_mape = _lookup(fresh, ("logo", "max_transfer_mape"))
    ceiling_ok = new_mape <= TRANSFER_MAPE_CEILING
    # MAPE gates invert the speedup convention: higher is worse.
    change = (new_mape - base_mape) / base_mape if base_mape else float("inf")
    verdict = "ok"
    if not ceiling_ok:
        verdict = "FAIL"
        failures.append(
            f"transfer: worst LOGO MAPE {new_mape:.1%} exceeds the "
            f"{TRANSFER_MAPE_CEILING:.0%} ceiling"
        )
    elif change > tolerance:
        verdict = "REGRESSION"
        failures.append(
            f"transfer: worst LOGO MAPE {new_mape:.1%} is {change:.0%} "
            f"above the committed {base_mape:.1%} (tolerance "
            f"{tolerance:.0%})"
        )
    elif change < -tolerance:
        verdict = "improved — consider refreshing the baseline"
    lines.append(
        f"  {'worst LOGO transfer MAPE':<28s} baseline {base_mape:10.1%}   "
        f"fresh {new_mape:10.1%}   {change:+7.1%}  [{verdict}]"
    )

    ratio = _lookup(fresh, ("spec_only", "overhead_ratio"))
    ratio_ok = ratio <= max_ratio
    lines.append(
        f"  {'spec-only sweep overhead':<28s} fresh {ratio:10.2f}x   "
        f"budget {max_ratio:.1f}x  [{'ok' if ratio_ok else 'REGRESSION'}]"
    )
    if not ratio_ok:
        failures.append(
            f"transfer: spec-only warm sweep is {ratio:.2f}x the "
            f"profiled sweep, over the {max_ratio:.1f}x budget"
        )

    lines.append(
        "  -- per-fold MAPEs (informational) --"
    )
    for gpu in fresh["logo"].get("gpus", []):
        fold = fresh["logo"]["folds"][gpu]
        base_fold = baseline["logo"]["folds"].get(gpu, {})
        base_v = float(base_fold.get("transfer_mape", float("nan")))
        lines.append(
            f"  holdout {gpu:<20s} baseline {base_v:10.1%}   "
            f"fresh {float(fold['transfer_mape']):10.1%}"
        )
    return lines, failures


#: The spot re-rank layer's coverage floor, mirroring the catalog gate.
SPOT_MIN_CANDIDATES = 1000


def compare_spot(
    baseline: dict, fresh: dict, tolerance: float, min_speedup: float
) -> Tuple[List[str], List[str]]:
    """Checks for the spot re-rank benchmark reports.

    The contracts are exact: re-rank and full re-sweep rankings must
    agree candidate-for-candidate with bitwise-equal scores, and a
    ratio-less admitted GPU must mask (not raise) under spot pricing.
    The re-rank/re-sweep speedup is a same-process ratio (host speed
    cancels) with an absolute floor; the baseline comparison is a drift
    tripwire with a wide tolerance — the re-rank side finishes in tens
    of microseconds, so scheduler jitter moves the ratio run-to-run.
    """
    lines: List[str] = []
    failures: List[str] = []

    for flag, label, message in (
        (bool(fresh["equivalence"].get("rankings_identical")),
         "rerank/re-sweep rankings",
         f"spot: {fresh['equivalence'].get('ranking_mismatches')} ranking "
         f"mismatch(es) between re-rank and full re-sweep"),
        (bool(fresh["equivalence"].get("scores_bitwise_equal")),
         "scores bitwise equal",
         "spot: re-rank scores are not bitwise equal to the full "
         "re-sweep's"),
        (bool(fresh["admitted"].get("spot_admitted_sweep_ok")),
         "admitted-GPU spot masking",
         "spot: sweep over a ratio-less admitted GPU broke the "
         "mask-not-raise contract"),
    ):
        lines.append(f"  {label:<28s} [{'ok' if flag else 'FAIL'}]")
        if not flag:
            failures.append(message)

    candidates = int(_lookup(fresh, ("rerank", "candidates")))
    count_ok = candidates >= SPOT_MIN_CANDIDATES
    lines.append(
        f"  {'spot candidates':<28s} fresh {candidates:10d}    "
        f"floor {SPOT_MIN_CANDIDATES}  [{'ok' if count_ok else 'FAIL'}]"
    )
    if not count_ok:
        failures.append(
            f"spot: re-rank covers {candidates} candidates, below the "
            f"{SPOT_MIN_CANDIDATES}-candidate floor"
        )

    speedup = _lookup(fresh, ("rerank", "speedup"))
    floor_ok = speedup >= min_speedup
    lines.append(
        f"  {'rerank vs re-sweep speedup':<28s} fresh {speedup:10.1f}x   "
        f"floor {min_speedup:.1f}x  [{'ok' if floor_ok else 'REGRESSION'}]"
    )
    if not floor_ok:
        failures.append(
            f"spot: re-rank speedup {speedup:.1f}x is below the "
            f"{min_speedup:.1f}x floor"
        )

    base_speedup = _lookup(baseline, ("rerank", "speedup"))
    change = (speedup - base_speedup) / base_speedup if base_speedup else float("inf")
    verdict = "ok"
    if change < -tolerance:
        verdict = "REGRESSION"
        failures.append(
            f"spot: re-rank speedup {speedup:.1f}x is {-change:.0%} below "
            f"the committed {base_speedup:.1f}x (tolerance {tolerance:.0%})"
        )
    elif change > tolerance:
        verdict = "improved — consider refreshing the baseline"
    lines.append(
        f"  {'spot vs baseline':<28s} baseline {base_speedup:10.1f}x   "
        f"fresh {speedup:10.1f}x   {change:+7.1%}  [{verdict}]"
    )

    lines.append(
        "  -- absolute latencies (informational; machine-dependent) --"
    )
    for path, label in (
        (("rerank", "resweep_warm_ms"), "full re-sweep warm ms"),
        (("rerank", "rerank_ms"), "re-rank ms"),
    ):
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        delta = (new - base) / base if base else float("inf")
        lines.append(
            f"  {label:<28s} baseline {base:10.3f}    fresh {new:10.3f}    "
            f"{delta:+7.1%}"
        )
    return lines, failures


#: Floors for the serving-layer ratios. Warm-vs-cold is large by
#: construction (a cold query pays graph build + compile + stacking; a
#: warm one reads caches), so 5x is a deliberately loose tripwire; the
#: coalesce floor says a burst of N distinct queries must cost
#: meaningfully more wall-clock than N identical coalesced ones.
SERVE_WARM_COLD_FLOOR = 5.0
SERVE_COALESCE_FLOOR = 1.5


def compare_serve(
    baseline: dict, fresh: dict, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Checks for the serving-layer benchmark reports.

    The hard contracts are exact booleans: an identical concurrent burst
    must collapse to exactly one evaluation, a hot swap under live
    traffic must drop zero requests while overlapping at least one
    reload, and every sanity endpoint must answer 200. The two ratios —
    warm-vs-cold first-query latency and distinct-vs-identical burst
    wall time — are same-process, so host speed cancels; each has an
    absolute floor plus a baseline drift tripwire. qps and percentile
    latencies are machine-dependent and informational only.
    """
    lines: List[str] = []
    failures: List[str] = []

    for flag, label, message in (
        (bool(fresh.get("endpoints", {}).get("all_ok")),
         "endpoint sanity", "serve: an endpoint sanity request failed"),
        (int(fresh.get("load", {}).get("errors", 1)) == 0,
         "load errors == 0",
         f"serve: {fresh.get('load', {}).get('errors')} load requests "
         f"failed"),
        (bool(fresh.get("coalesce", {}).get("single_evaluation")),
         "identical burst -> 1 eval",
         f"serve: identical burst ran "
         f"{fresh.get('coalesce', {}).get('identical_evaluations')} "
         f"evaluations (expected 1)"),
        (int(fresh.get("hotswap", {}).get("dropped", 1)) == 0,
         "hot swap drops == 0",
         f"serve: hot swap dropped "
         f"{fresh.get('hotswap', {}).get('dropped')} request(s)"),
        (bool(fresh.get("hotswap", {}).get("overlapped_swaps")),
         "traffic overlapped a swap",
         "serve: hot-swap traffic never overlapped a reload"),
    ):
        lines.append(f"  {label:<28s} [{'ok' if flag else 'FAIL'}]")
        if not flag:
            failures.append(message)

    for path, label, floor in (
        (("warm_vs_cold", "warm_vs_cold_ratio"), "warm-vs-cold ratio",
         SERVE_WARM_COLD_FLOOR),
        (("coalesce", "coalesce_ratio"), "coalesce ratio",
         SERVE_COALESCE_FLOOR),
    ):
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        floor_ok = new >= floor
        change = (new - base) / base if base else float("inf")
        verdict = "ok"
        if not floor_ok:
            verdict = "REGRESSION"
            failures.append(
                f"serve: {label} {new:.1f}x is below the {floor:.1f}x floor"
            )
        elif change < -tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"serve: {label} {new:.1f}x is {-change:.0%} below the "
                f"committed {base:.1f}x (tolerance {tolerance:.0%})"
            )
        elif change > tolerance:
            verdict = "improved — consider refreshing the baseline"
        lines.append(
            f"  {label:<28s} baseline {base:10.1f}x   fresh {new:10.1f}x   "
            f"{change:+7.1%}  floor {floor:.1f}x  [{verdict}]"
        )

    lines.append(
        "  -- throughput/latency (informational; machine-dependent) --"
    )
    for path, label in (
        (("load", "qps"), "sustained qps"),
        (("load", "p50_ms"), "p50 ms"),
        (("load", "p99_ms"), "p99 ms"),
        (("warm_vs_cold", "cache_hit_ms"), "LRU hit ms"),
    ):
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        delta = (new - base) / base if base else float("inf")
        lines.append(
            f"  {label:<28s} baseline {base:10.3f}    fresh {new:10.3f}    "
            f"{delta:+7.1%}"
        )
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=Path("BENCH_predict_engine.json"),
                        help="committed baseline report")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated report to gate")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drop in speedup ratios "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--fanout-baseline", type=Path,
                        default=Path("BENCH_fanout.json"),
                        help="committed fan-out benchmark report")
    parser.add_argument("--fanout-fresh", type=Path, default=None,
                        help="freshly generated fan-out report; enables the "
                             "core-aware fan-out checks")
    parser.add_argument("--fanout-min", type=float, default=2.0,
                        help="minimum fan-out sweep speedup on hosts with "
                             ">= 4 cores (default 2.0)")
    parser.add_argument("--catalog-baseline", type=Path,
                        default=Path("BENCH_sweep_catalog.json"),
                        help="committed catalog-sweep benchmark report")
    parser.add_argument("--catalog-fresh", type=Path, default=None,
                        help="freshly generated catalog-sweep report; "
                             "enables the batched-sweep checks")
    parser.add_argument("--catalog-tolerance", type=float, default=0.5,
                        help="allowed fractional drop in the catalog warm "
                             "speedup vs its baseline (wider than "
                             "--tolerance: the ~0.3 ms batched side makes "
                             "the ratio noisy)")
    parser.add_argument("--catalog-min", type=float, default=10.0,
                        help="minimum warm batched-vs-loop catalog sweep "
                             "speedup (default 10.0)")
    parser.add_argument("--transfer-baseline", type=Path,
                        default=Path("BENCH_transfer.json"),
                        help="committed transfer benchmark report")
    parser.add_argument("--transfer-fresh", type=Path, default=None,
                        help="freshly generated transfer report; enables "
                             "the cross-hardware transfer checks")
    parser.add_argument("--transfer-tolerance", type=float, default=0.25,
                        help="allowed fractional rise in the worst LOGO "
                             "transfer MAPE vs its baseline")
    parser.add_argument("--transfer-max-overhead", type=float, default=3.0,
                        help="maximum spec-only/profiled warm sweep ratio "
                             "(default 3.0)")
    parser.add_argument("--spot-baseline", type=Path,
                        default=Path("BENCH_spot_rerank.json"),
                        help="committed spot re-rank benchmark report")
    parser.add_argument("--spot-fresh", type=Path, default=None,
                        help="freshly generated spot re-rank report; "
                             "enables the spot-dynamics checks")
    parser.add_argument("--spot-tolerance", type=float, default=0.5,
                        help="allowed fractional drop in the re-rank "
                             "speedup vs its baseline (wide: the re-rank "
                             "side is tens of microseconds)")
    parser.add_argument("--spot-min", type=float, default=10.0,
                        help="minimum re-rank vs warmed full re-sweep "
                             "speedup (default 10.0)")
    parser.add_argument("--serve-baseline", type=Path,
                        default=Path("BENCH_serve.json"),
                        help="committed serving-layer benchmark report")
    parser.add_argument("--serve-fresh", type=Path, default=None,
                        help="freshly generated serve report; enables the "
                             "serving-layer checks")
    parser.add_argument("--serve-tolerance", type=float, default=0.5,
                        help="allowed fractional drop in the serve ratios vs "
                             "their baseline (wide: millisecond-scale burst "
                             "walls make the ratios noisy)")
    args = parser.parse_args(argv)
    if not 0 < args.tolerance < 1:
        parser.error("--tolerance must be in (0, 1)")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    lines, failures = compare(baseline, fresh, args.tolerance)
    print(f"perf gate: {args.fresh} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    print("\n".join(lines))
    if args.fanout_fresh is not None:
        fanout_baseline = json.loads(args.fanout_baseline.read_text())
        fanout_fresh = json.loads(args.fanout_fresh.read_text())
        fanout_lines, fanout_failures = compare_fanout(
            fanout_baseline, fanout_fresh, args.tolerance, args.fanout_min
        )
        print(f"fan-out gate: {args.fanout_fresh} vs {args.fanout_baseline}")
        print("\n".join(fanout_lines))
        failures.extend(fanout_failures)
    if args.catalog_fresh is not None:
        catalog_baseline = json.loads(args.catalog_baseline.read_text())
        catalog_fresh = json.loads(args.catalog_fresh.read_text())
        catalog_lines, catalog_failures = compare_catalog(
            catalog_baseline, catalog_fresh, args.catalog_tolerance,
            args.catalog_min,
        )
        print(f"catalog gate: {args.catalog_fresh} vs {args.catalog_baseline}")
        print("\n".join(catalog_lines))
        failures.extend(catalog_failures)
    if args.transfer_fresh is not None:
        transfer_baseline = json.loads(args.transfer_baseline.read_text())
        transfer_fresh = json.loads(args.transfer_fresh.read_text())
        transfer_lines, transfer_failures = compare_transfer(
            transfer_baseline, transfer_fresh, args.transfer_tolerance,
            args.transfer_max_overhead,
        )
        print(f"transfer gate: {args.transfer_fresh} vs "
              f"{args.transfer_baseline}")
        print("\n".join(transfer_lines))
        failures.extend(transfer_failures)
    if args.spot_fresh is not None:
        spot_baseline = json.loads(args.spot_baseline.read_text())
        spot_fresh = json.loads(args.spot_fresh.read_text())
        spot_lines, spot_failures = compare_spot(
            spot_baseline, spot_fresh, args.spot_tolerance, args.spot_min
        )
        print(f"spot gate: {args.spot_fresh} vs {args.spot_baseline}")
        print("\n".join(spot_lines))
        failures.extend(spot_failures)
    if args.serve_fresh is not None:
        serve_baseline = json.loads(args.serve_baseline.read_text())
        serve_fresh = json.loads(args.serve_fresh.read_text())
        serve_lines, serve_failures = compare_serve(
            serve_baseline, serve_fresh, args.serve_tolerance
        )
        print(f"serve gate: {args.serve_fresh} vs {args.serve_baseline}")
        print("\n".join(serve_lines))
        failures.extend(serve_failures)
    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
