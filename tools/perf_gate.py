#!/usr/bin/env python
"""CI perf-regression gate: fresh bench report vs the committed baseline.

Compares a freshly generated ``tools/bench_engine.py --json`` report
against the committed ``BENCH_predict_engine.json`` and fails (exit 1) on
regression. Absolute latencies are machine-dependent — a CI runner is not
the machine the baseline was recorded on — so the gate checks the
*machine-independent* quantities:

* ``sweep.speedup_cold`` / ``sweep.speedup_warm`` and
  ``single_graph.speedup_warm`` — scalar-vs-engine ratios measured on the
  same machine in the same process, so host speed cancels out. A slowdown
  injected into the engine (but not the scalar reference) tanks these.
* ``equivalence.max_rel_diff`` — must stay within 1e-6 (correctness, not
  timing; no tolerance applies).

Ratios regressing more than ``--tolerance`` (default 15%) below baseline
fail the gate; improvements beyond the same margin pass with a reminder
to refresh the committed baseline. Absolute latency deltas are printed
for information only.

Usage (the CI ``perf`` job)::

    PYTHONPATH=src python tools/bench_engine.py --json fresh.json
    python tools/perf_gate.py --baseline BENCH_predict_engine.json \
        --fresh fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple

#: (path into the report, human label) for each gated speedup ratio.
GATED_RATIOS: Tuple[Tuple[Tuple[str, str], str], ...] = (
    (("sweep", "speedup_cold"), "16-candidate sweep, cold"),
    (("sweep", "speedup_warm"), "16-candidate sweep, warm"),
    (("single_graph", "speedup_warm"), "single-graph eval, warm"),
)

#: Informational absolute latencies (not gated; machine-dependent).
INFO_LATENCIES: Tuple[Tuple[Tuple[str, str], str], ...] = (
    (("sweep", "engine_cold_ms"), "sweep cold ms"),
    (("sweep", "engine_warm_ms"), "sweep warm ms"),
    (("single_graph", "engine_warm_us"), "single-graph warm us"),
)

EQUIVALENCE_BOUND = 1e-6


def _lookup(report: dict, path: Tuple[str, str]) -> float:
    section, field = path
    try:
        value = report[section][field]
    except KeyError as exc:
        raise SystemExit(f"malformed bench report: missing {section}.{field}"
                         f" ({exc})")
    return float(value)


def compare(baseline: dict, fresh: dict, tolerance: float) -> Tuple[List[str], List[str]]:
    """Returns (report lines, failure lines)."""
    lines: List[str] = []
    failures: List[str] = []
    for path, label in GATED_RATIOS:
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        change = (new - base) / base if base else float("inf")
        verdict = "ok"
        if change < -tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{label}: speedup {new:.1f}x is {-change:.0%} below the "
                f"committed {base:.1f}x (tolerance {tolerance:.0%})"
            )
        elif change > tolerance:
            verdict = "improved — consider refreshing the baseline"
        lines.append(
            f"  {label:<28s} baseline {base:10.1f}x   fresh {new:10.1f}x   "
            f"{change:+7.1%}  [{verdict}]"
        )

    base_eq = _lookup(baseline, ("equivalence", "max_rel_diff"))
    new_eq = _lookup(fresh, ("equivalence", "max_rel_diff"))
    eq_ok = new_eq <= EQUIVALENCE_BOUND
    lines.append(
        f"  {'scalar/engine equivalence':<28s} baseline {base_eq:10.2e}    "
        f"fresh {new_eq:10.2e}   [{'ok' if eq_ok else 'FAIL'}]"
    )
    if not eq_ok:
        failures.append(
            f"equivalence: max_rel_diff {new_eq:.2e} exceeds "
            f"{EQUIVALENCE_BOUND:.0e} — engine and scalar paths disagree"
        )

    lines.append("  -- absolute latencies (informational; machine-dependent) --")
    for path, label in INFO_LATENCIES:
        base = _lookup(baseline, path)
        new = _lookup(fresh, path)
        change = (new - base) / base if base else float("inf")
        lines.append(
            f"  {label:<28s} baseline {base:10.3f}    fresh {new:10.3f}    "
            f"{change:+7.1%}"
        )
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=Path("BENCH_predict_engine.json"),
                        help="committed baseline report")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated report to gate")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional drop in speedup ratios "
                             "(default 0.15 = 15%%)")
    args = parser.parse_args(argv)
    if not 0 < args.tolerance < 1:
        parser.error("--tolerance must be in (0, 1)")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    lines, failures = compare(baseline, fresh, args.tolerance)
    print(f"perf gate: {args.fresh} vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    print("\n".join(lines))
    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
